file(REMOVE_RECURSE
  "CMakeFiles/map_suite.dir/examples/map_suite.cpp.o"
  "CMakeFiles/map_suite.dir/examples/map_suite.cpp.o.d"
  "map_suite"
  "map_suite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/map_suite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
