file(REMOVE_RECURSE
  "CMakeFiles/bench_heuristic.dir/bench/bench_heuristic.cpp.o"
  "CMakeFiles/bench_heuristic.dir/bench/bench_heuristic.cpp.o.d"
  "bench_heuristic"
  "bench_heuristic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_heuristic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
