file(REMOVE_RECURSE
  "CMakeFiles/space_engines_test.dir/tests/space_engines_test.cpp.o"
  "CMakeFiles/space_engines_test.dir/tests/space_engines_test.cpp.o.d"
  "space_engines_test"
  "space_engines_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/space_engines_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
