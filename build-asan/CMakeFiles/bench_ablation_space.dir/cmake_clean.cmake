file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_space.dir/bench/bench_ablation_space.cpp.o"
  "CMakeFiles/bench_ablation_space.dir/bench/bench_ablation_space.cpp.o.d"
  "bench_ablation_space"
  "bench_ablation_space.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
