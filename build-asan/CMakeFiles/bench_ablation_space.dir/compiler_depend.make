# Empty compiler generated dependencies file for bench_ablation_space.
# This may be replaced when dependencies are built.
