file(REMOVE_RECURSE
  "CMakeFiles/custom_arch.dir/examples/custom_arch.cpp.o"
  "CMakeFiles/custom_arch.dir/examples/custom_arch.cpp.o.d"
  "custom_arch"
  "custom_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
