# Empty dependencies file for custom_arch.
# This may be replaced when dependencies are built.
