file(REMOVE_RECURSE
  "CMakeFiles/restricted_test.dir/tests/restricted_test.cpp.o"
  "CMakeFiles/restricted_test.dir/tests/restricted_test.cpp.o.d"
  "restricted_test"
  "restricted_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/restricted_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
