# Empty compiler generated dependencies file for restricted_test.
# This may be replaced when dependencies are built.
