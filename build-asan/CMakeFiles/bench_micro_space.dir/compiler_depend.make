# Empty compiler generated dependencies file for bench_micro_space.
# This may be replaced when dependencies are built.
