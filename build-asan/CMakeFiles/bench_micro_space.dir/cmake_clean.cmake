file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_space.dir/bench/bench_micro_space.cpp.o"
  "CMakeFiles/bench_micro_space.dir/bench/bench_micro_space.cpp.o.d"
  "bench_micro_space"
  "bench_micro_space.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
