file(REMOVE_RECURSE
  "CMakeFiles/simulate_mapping.dir/examples/simulate_mapping.cpp.o"
  "CMakeFiles/simulate_mapping.dir/examples/simulate_mapping.cpp.o.d"
  "simulate_mapping"
  "simulate_mapping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simulate_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
