# Empty compiler generated dependencies file for simulate_mapping.
# This may be replaced when dependencies are built.
