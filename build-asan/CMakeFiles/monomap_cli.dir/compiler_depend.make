# Empty compiler generated dependencies file for monomap_cli.
# This may be replaced when dependencies are built.
