file(REMOVE_RECURSE
  "CMakeFiles/monomap_cli.dir/tools/monomap_cli.cpp.o"
  "CMakeFiles/monomap_cli.dir/tools/monomap_cli.cpp.o.d"
  "monomap"
  "monomap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monomap_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
