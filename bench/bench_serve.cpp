// bench_serve — load generator for the mapping service.
//
// Drives the newline-delimited JSON protocol either against an in-process
// MappingService (default; no sockets, deterministic single-box numbers)
// or against a live monomap_serve daemon (--unix PATH). Three sections,
// emitted as rows keyed (suite, grid, engine) for tools/bench_diff.py:
//
//   cold — per-request memo and warm starts disabled: the raw mapper path,
//          the denominator every reuse claim is measured against.
//   memo — the same request twice; the first populates the fingerprint
//          memo, the timed repeats must come back memo_hit with zero
//          schedules tried.
//   warm — hard suites twice with the memo disabled: the first run
//          publishes certificates and refuted-II floors into the knowledge
//          store, the timed second run starts warm and must not try more
//          schedules than the cold row.
//
// Output: one JSON document (BENCH_serve.json schema) with per-row outcome
// fields and an aggregate outcome_counts histogram.
#include <algorithm>
#include <array>
#include <cstring>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "bench_json.hpp"
#include "service/service.hpp"
#include "support/argparse.hpp"
#include "support/json.hpp"
#include "support/outcome.hpp"
#include "support/stopwatch.hpp"
#include "workloads/suite.hpp"

namespace {

using namespace monomap;

[[noreturn]] void usage() {
  std::cerr <<
      "usage: bench_serve [--grid N] [--repeats N] [--deadline S]\n"
      "  [--suites a,b,c]  cold/memo section suites (default: full suite)\n"
      "  [--hard a,b,c]    warm section suites (default: cfd,hotspot3D,nw)\n"
      "  [--unix PATH]     drive a live monomap_serve instead of in-process\n"
      "  [--shutdown]      send a shutdown verb when done (--unix mode)\n"
      "prints one BENCH_serve.json document to stdout\n";
  std::exit(2);
}

/// Where request lines go: an in-process service or a connected daemon.
class Transport {
 public:
  virtual ~Transport() = default;
  virtual std::string round_trip(const std::string& line) = 0;
};

class InProcessTransport : public Transport {
 public:
  explicit InProcessTransport(MappingService::Options options)
      : service_(std::move(options)) {}
  std::string round_trip(const std::string& line) override {
    return service_.handle_line(line);
  }

 private:
  MappingService service_;
};

class UnixTransport : public Transport {
 public:
  explicit UnixTransport(const std::string& path) {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (fd_ < 0 || path.size() >= sizeof(addr.sun_path)) {
      std::cerr << "bench_serve: cannot create socket for " << path << '\n';
      std::exit(1);
    }
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      std::cerr << "bench_serve: cannot connect to " << path << ": "
                << std::strerror(errno) << '\n';
      std::exit(1);
    }
  }
  ~UnixTransport() override {
    if (fd_ >= 0) ::close(fd_);
  }
  std::string round_trip(const std::string& line) override {
    std::string out = line;
    out.push_back('\n');
    std::size_t off = 0;
    while (off < out.size()) {
      const ssize_t w = ::write(fd_, out.data() + off, out.size() - off);
      if (w <= 0) {
        std::cerr << "bench_serve: connection lost mid-write\n";
        std::exit(1);
      }
      off += static_cast<std::size_t>(w);
    }
    for (;;) {
      const std::size_t nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        std::string response = buffer_.substr(0, nl);
        buffer_.erase(0, nl + 1);
        return response;
      }
      char chunk[4096];
      const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
      if (n <= 0) {
        std::cerr << "bench_serve: connection lost mid-read\n";
        std::exit(1);
      }
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

struct Row {
  std::string suite;
  std::string engine;  // cold | memo | warm
  bool success = false;
  std::string outcome;
  int ii = 0;
  double seconds = 0.0;
  std::int64_t schedules_tried = 0;
  bool memo_hit = false;
  std::int64_t certs_seeded = 0;
  std::int64_t floor = 0;
  std::int64_t nogoods_lifted_cross_ii = 0;
  std::int64_t speculative_hits = 0;
};

struct Harness {
  Transport* transport = nullptr;
  int grid = 4;
  double deadline_s = 30.0;
  std::vector<std::string> outcome_seen;  // one outcome string per request

  std::string request_line(const std::string& suite, bool memo, bool warm) {
    std::ostringstream os;
    os << "{\"verb\":\"map\",\"id\":\"bench\",\"bench\":\"" << suite
       << "\",\"grid\":" << grid << ",\"deadline_s\":" << deadline_s
       << ",\"memo\":" << (memo ? "true" : "false")
       << ",\"warm\":" << (warm ? "true" : "false") << "}";
    return os.str();
  }

  /// One round trip, parsed into a Row (seconds is the client-side wall
  /// time — the number a caller of the service actually experiences).
  Row send(const std::string& suite, const std::string& engine, bool memo,
           bool warm) {
    const std::string line = request_line(suite, memo, warm);
    Stopwatch watch;
    const std::string response = transport->round_trip(line);
    const double wall = watch.elapsed_s();
    const std::optional<json::Value> doc = json::parse(response);
    if (!doc.has_value() || !doc->is_object()) {
      std::cerr << "bench_serve: unparsable response: " << response << '\n';
      std::exit(1);
    }
    Row row;
    row.suite = suite;
    row.engine = engine;
    row.success = doc->bool_or("ok", false);
    row.outcome = doc->string_or("outcome", "error");
    row.ii = static_cast<int>(doc->number_or("ii", 0.0));
    row.seconds = wall;
    row.schedules_tried =
        static_cast<std::int64_t>(doc->number_or("schedules_tried", 0.0));
    row.memo_hit = doc->bool_or("memo_hit", false);
    row.certs_seeded =
        static_cast<std::int64_t>(doc->number_or("certs_seeded", 0.0));
    row.floor = static_cast<std::int64_t>(doc->number_or("floor", 0.0));
    row.nogoods_lifted_cross_ii = static_cast<std::int64_t>(
        doc->number_or("nogoods_lifted_cross_ii", 0.0));
    row.speculative_hits =
        static_cast<std::int64_t>(doc->number_or("speculative_hits", 0.0));
    outcome_seen.push_back(row.outcome);
    return row;
  }
};

void write_row(bench::JsonWriter& w, const Row& row) {
  w.begin_object();
  w.field("suite", row.suite);
  w.field("engine", row.engine);
  w.field("success", row.success);
  w.field("outcome", row.outcome);
  w.field("ii", row.ii);
  w.field("seconds", row.seconds);
  w.field("schedules_tried", row.schedules_tried);
  w.field("memo_hit", row.memo_hit);
  w.field("certs_seeded", row.certs_seeded);
  w.field("floor", row.floor);
  w.field("nogoods_lifted_cross_ii", row.nogoods_lifted_cross_ii);
  w.field("speculative_hits", row.speculative_hits);
  w.end_object();
}

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  int grid = 4;
  int repeats = 3;
  double deadline_s = 30.0;
  std::vector<std::string> suites;
  std::vector<std::string> hard = {"cfd", "hotspot3D", "nw"};
  std::string unix_path;
  bool send_shutdown = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage();
      return argv[++i];
    };
    if (arg == "--grid") {
      if (!argparse::parse_int(value(), &grid) || grid < 1) usage();
    } else if (arg == "--repeats") {
      if (!argparse::parse_int(value(), &repeats) || repeats < 1) usage();
    } else if (arg == "--deadline") {
      if (!argparse::parse_double(value(), &deadline_s) || deadline_s <= 0.0) {
        usage();
      }
    } else if (arg == "--suites") {
      suites = split_csv(value());
    } else if (arg == "--hard") {
      hard = split_csv(value());
    } else if (arg == "--unix") {
      unix_path = value();
    } else if (arg == "--shutdown") {
      send_shutdown = true;
    } else {
      usage();
    }
  }
  if (suites.empty()) {
    for (const Benchmark& b : benchmark_suite()) suites.push_back(b.name);
  }

  std::unique_ptr<Transport> transport;
  if (unix_path.empty()) {
    MappingService::Options options;
    options.threads = 1;
    options.default_deadline_s = deadline_s;
    transport = std::make_unique<InProcessTransport>(options);
  } else {
    transport = std::make_unique<UnixTransport>(unix_path);
  }
  Harness harness{transport.get(), grid, deadline_s, {}};

  // --- cold: raw mapper path, reuse off -----------------------------------
  std::vector<Row> rows;
  std::vector<std::string> cold_suites = suites;
  for (const std::string& h : hard) {
    if (std::find(cold_suites.begin(), cold_suites.end(), h) ==
        cold_suites.end()) {
      cold_suites.push_back(h);
    }
  }
  for (const std::string& suite : cold_suites) {
    std::vector<Row> samples;
    std::vector<double> times;
    for (int r = 0; r < repeats; ++r) {
      samples.push_back(harness.send(suite, "cold", false, false));
      times.push_back(samples.back().seconds);
    }
    Row row = samples.front();
    row.seconds = bench::median(times);
    rows.push_back(row);
  }

  // --- memo: duplicate requests must be O(1) cache hits -------------------
  std::uint64_t memo_hits = 0;
  for (const std::string& suite : suites) {
    (void)harness.send(suite, "memo_populate", true, false);  // not recorded
    std::vector<Row> samples;
    std::vector<double> times;
    for (int r = 0; r < repeats; ++r) {
      samples.push_back(harness.send(suite, "memo", true, false));
      times.push_back(samples.back().seconds);
    }
    Row row = samples.front();
    row.seconds = bench::median(times);
    if (row.memo_hit) ++memo_hits;
    rows.push_back(row);
  }

  // --- warm: certificate/floor warm starts on the hard cases --------------
  std::uint64_t warm_starts = 0;
  for (const std::string& suite : hard) {
    (void)harness.send(suite, "warm_donor", false, true);  // publishes
    const Row row = harness.send(suite, "warm", false, true);
    if (row.certs_seeded > 0 || row.floor > 0) ++warm_starts;
    rows.push_back(row);
  }

  // The rows whose comparison IS the acceptance claim: memo >= 10x faster
  // than cold, warm never trying more schedules than cold. A memo hit has
  // a fixed floor (fingerprint + JSON + transport, ~0.1 ms), so the ratio
  // is only a statement about the cache on requests whose cold mapping
  // does nontrivial work — the headline median takes cold >= 1 ms rows;
  // memo_speedup_median_all keeps the unfiltered number alongside.
  constexpr double kNontrivialColdSeconds = 1e-3;
  std::vector<double> memo_speedups;
  std::vector<double> memo_speedups_all;
  std::uint64_t warm_strictly_fewer = 0;
  bool warm_never_more = true;
  for (const Row& row : rows) {
    if (row.engine != "cold") continue;
    for (const Row& other : rows) {
      if (other.suite != row.suite) continue;
      if (other.engine == "memo" && other.seconds > 0.0) {
        memo_speedups_all.push_back(row.seconds / other.seconds);
        if (row.seconds >= kNontrivialColdSeconds) {
          memo_speedups.push_back(row.seconds / other.seconds);
        }
      }
      if (other.engine == "warm") {
        if (other.schedules_tried < row.schedules_tried) {
          ++warm_strictly_fewer;
        }
        if (other.schedules_tried > row.schedules_tried) {
          warm_never_more = false;
        }
      }
    }
  }

  std::array<std::uint64_t, static_cast<std::size_t>(kMapOutcomeCount)>
      counts{};
  for (const std::string& outcome : harness.outcome_seen) {
    for (int o = 0; o < kMapOutcomeCount; ++o) {
      if (outcome == to_string(static_cast<MapOutcome>(o))) {
        ++counts[static_cast<std::size_t>(o)];
      }
    }
  }

  bench::JsonWriter w(std::cout);
  w.begin_object();
  w.field("bench", "bench_serve");
  w.field("grid", grid);
  w.field("topology", "mesh");
  w.field("repeats", repeats);
  w.field("transport", unix_path.empty() ? "in-process" : "unix");
  w.key("serve");
  w.begin_array();
  for (const Row& row : rows) write_row(w, row);
  w.end_array();
  // The per-batch outcome histogram over every request this run issued.
  w.key("outcome_counts");
  w.begin_object();
  for (int o = 0; o < kMapOutcomeCount; ++o) {
    w.field(to_string(static_cast<MapOutcome>(o)),
            counts[static_cast<std::size_t>(o)]);
  }
  w.end_object();
  w.key("summary");
  w.begin_object();
  w.field("memo_hit_sections", memo_hits);
  w.field("warm_start_sections", warm_starts);
  w.field("memo_speedup_median", bench::median(memo_speedups));
  w.field("memo_speedup_median_all", bench::median(memo_speedups_all));
  w.field("memo_nontrivial_sections",
          static_cast<std::uint64_t>(memo_speedups.size()));
  w.field("warm_strictly_fewer_cases", warm_strictly_fewer);
  w.field("warm_never_more_schedules", warm_never_more);
  w.end_object();
  w.end_object();
  std::cout << '\n';

  if (send_shutdown) {
    (void)transport->round_trip("{\"verb\":\"shutdown\",\"id\":\"bench\"}");
  }
  return 0;
}
