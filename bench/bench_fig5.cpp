// Regenerates the paper's Fig. 5: compilation time of the aes benchmark as
// a function of CGRA size, for the decoupled monomorphism mapper and the
// coupled SAT-MapIt-style baseline. The paper's observation: the baseline's
// time grows steeply with the grid, the decoupled mapper's stays flat.
//
// Usage: bench_fig5 [benchmark] [--timeout S]   (default: aes)
#include <iostream>
#include <string>

#include "bench_common.hpp"
#include "mapper/coupled_mapper.hpp"
#include "mapper/decoupled_mapper.hpp"
#include "support/table.hpp"
#include "workloads/suite.hpp"

int main(int argc, char** argv) {
  using namespace monomap;
  using namespace monomap::bench;

  std::string name = "aes";
  double timeout = timeout_s();
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--timeout" && i + 1 < argc) {
      timeout = std::atof(argv[++i]);
    } else if (arg[0] != '-') {
      name = arg;
    }
  }
  const Benchmark& b = benchmark_by_name(name);

  std::cout << "Fig. 5 reproduction — compilation time vs CGRA size for '"
            << b.name << "' (timeout " << timeout << " s)\n\n";
  AsciiTable table({"CGRA", "Monomorphism[s]", "SAT-MapIt-style[s]", "II",
                    "II(base)"});
  std::cout << "csv: grid,mono_s,baseline_s\n";
  for (const int side : {2, 3, 4, 5, 6, 8, 10, 12, 16, 20}) {
    const CgraArch arch = CgraArch::square(side);
    DecoupledMapperOptions mono_opt;
    mono_opt.timeout_s = timeout;
    const MapResult mono = DecoupledMapper(mono_opt).map(b.dfg, arch);
    CoupledMapperOptions base_opt;
    base_opt.timeout_s = timeout;
    const CoupledMapResult base = CoupledSatMapper(base_opt).map(b.dfg, arch);
    table.add_row({std::to_string(side) + "x" + std::to_string(side),
                   mono.success ? format_time_s(mono.total_s) : "TO",
                   base.success ? format_time_s(base.total_s) : "TO",
                   mono.success ? std::to_string(mono.ii) : "-",
                   base.success ? std::to_string(base.ii) : "-"});
    std::cout << "csv: " << side << ','
              << (mono.success ? mono.total_s : -1.0) << ','
              << (base.success ? base.total_s : -1.0) << '\n';
  }
  std::cout << '\n';
  table.print(std::cout);
  std::cout << "\npaper shape: baseline grows from ~2.6 s (2x2) past the\n"
               "4000 s timeout (20x20); the decoupled mapper stays ~0.5 s\n"
               "across all sizes.\n";
  return 0;
}
