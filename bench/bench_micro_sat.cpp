// Micro-benchmark A4: CDCL solver throughput on classic instance families
// (google-benchmark). The SAT engine is the substrate of both mappers; this
// tracks its raw performance independently of the mapping formulations.
#include <benchmark/benchmark.h>

#include "encode/cnf_builder.hpp"
#include "sat/dimacs.hpp"
#include "sat/solver.hpp"
#include "support/rng.hpp"

namespace {

using namespace monomap;

CnfFormula random_3sat(int num_vars, double ratio, std::uint64_t seed) {
  Rng rng(seed);
  CnfFormula f;
  f.num_vars = num_vars;
  const int num_clauses = static_cast<int>(num_vars * ratio);
  for (int c = 0; c < num_clauses; ++c) {
    std::vector<int> clause;
    while (clause.size() < 3) {
      const int v =
          static_cast<int>(rng.next_below(static_cast<std::uint64_t>(num_vars))) + 1;
      const int lit = rng.next_bool(0.5) ? v : -v;
      bool dup = false;
      for (const int l : clause) {
        if (l == lit || l == -lit) dup = true;
      }
      if (!dup) clause.push_back(lit);
    }
    f.clauses.push_back(clause);
  }
  return f;
}

void BM_Random3SatUnderdetermined(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    SatSolver solver;
    const CnfFormula f = random_3sat(n, 3.0, seed++);
    load_into_solver(f, solver);
    benchmark::DoNotOptimize(solver.solve());
  }
}
BENCHMARK(BM_Random3SatUnderdetermined)->Arg(50)->Arg(100)->Arg(200);

void BM_Random3SatPhaseTransition(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::uint64_t seed = 7;
  for (auto _ : state) {
    SatSolver solver;
    const CnfFormula f = random_3sat(n, 4.26, seed++);
    load_into_solver(f, solver);
    benchmark::DoNotOptimize(solver.solve());
  }
}
BENCHMARK(BM_Random3SatPhaseTransition)->Arg(40)->Arg(60)->Arg(80);

void BM_Pigeonhole(benchmark::State& state) {
  const int holes = static_cast<int>(state.range(0));
  for (auto _ : state) {
    SatSolver solver;
    CnfBuilder cnf(solver);
    std::vector<std::vector<Lit>> pigeon(
        static_cast<std::size_t>(holes + 1));
    std::vector<std::vector<Lit>> hole(static_cast<std::size_t>(holes));
    for (int p = 0; p <= holes; ++p) {
      for (int h = 0; h < holes; ++h) {
        const Lit l = Lit::pos(solver.new_var());
        pigeon[static_cast<std::size_t>(p)].push_back(l);
        hole[static_cast<std::size_t>(h)].push_back(l);
      }
    }
    for (const auto& row : pigeon) cnf.at_least_one(row);
    for (const auto& col : hole) cnf.at_most_one(col);
    benchmark::DoNotOptimize(solver.solve());
  }
}
BENCHMARK(BM_Pigeonhole)->Arg(5)->Arg(7)->Arg(8);

void BM_SequentialCounterEncoding(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    SatSolver solver;
    CnfBuilder cnf(solver);
    std::vector<Lit> lits;
    for (int i = 0; i < n; ++i) lits.push_back(Lit::pos(solver.new_var()));
    cnf.at_most_k(lits, n / 4);
    benchmark::DoNotOptimize(solver.num_clauses());
  }
}
BENCHMARK(BM_SequentialCounterEncoding)->Arg(64)->Arg(256)->Arg(1024);

void BM_IncrementalBlocking(benchmark::State& state) {
  // Model enumeration via blocking clauses — the decoupled mapper's retry
  // pattern.
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    SatSolver solver;
    std::vector<SatVar> vars;
    for (int i = 0; i < n; ++i) vars.push_back(solver.new_var());
    int models = 0;
    while (solver.solve() == SatStatus::kSat && models < 64) {
      ++models;
      std::vector<Lit> block;
      for (const SatVar v : vars) {
        block.push_back(Lit(v, solver.model_value(v)));
      }
      if (!solver.add_clause(block)) break;
    }
    benchmark::DoNotOptimize(models);
  }
}
BENCHMARK(BM_IncrementalBlocking)->Arg(10)->Arg(16);

}  // namespace

BENCHMARK_MAIN();
