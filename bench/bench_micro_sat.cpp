// Micro-benchmark A4: CDCL solver throughput on classic instance families
// (google-benchmark). The SAT engine is the substrate of both mappers; this
// tracks its raw performance independently of the mapping formulations.
#include <benchmark/benchmark.h>

#include "encode/cnf_builder.hpp"
#include "sat/dimacs.hpp"
#include "sat/solver.hpp"
#include "support/rng.hpp"

namespace {

using namespace monomap;

CnfFormula random_3sat(int num_vars, double ratio, std::uint64_t seed) {
  Rng rng(seed);
  CnfFormula f;
  f.num_vars = num_vars;
  const int num_clauses = static_cast<int>(num_vars * ratio);
  for (int c = 0; c < num_clauses; ++c) {
    std::vector<int> clause;
    while (clause.size() < 3) {
      const int v =
          static_cast<int>(rng.next_below(static_cast<std::uint64_t>(num_vars))) + 1;
      const int lit = rng.next_bool(0.5) ? v : -v;
      bool dup = false;
      for (const int l : clause) {
        if (l == lit || l == -lit) dup = true;
      }
      if (!dup) clause.push_back(lit);
    }
    f.clauses.push_back(clause);
  }
  return f;
}

void BM_Random3SatUnderdetermined(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    SatSolver solver;
    const CnfFormula f = random_3sat(n, 3.0, seed++);
    load_into_solver(f, solver);
    benchmark::DoNotOptimize(solver.solve());
  }
}
BENCHMARK(BM_Random3SatUnderdetermined)->Arg(50)->Arg(100)->Arg(200);

void BM_Random3SatPhaseTransition(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::uint64_t seed = 7;
  for (auto _ : state) {
    SatSolver solver;
    const CnfFormula f = random_3sat(n, 4.26, seed++);
    load_into_solver(f, solver);
    benchmark::DoNotOptimize(solver.solve());
  }
}
BENCHMARK(BM_Random3SatPhaseTransition)->Arg(40)->Arg(60)->Arg(80);

void BM_Pigeonhole(benchmark::State& state) {
  const int holes = static_cast<int>(state.range(0));
  for (auto _ : state) {
    SatSolver solver;
    CnfBuilder cnf(solver);
    std::vector<std::vector<Lit>> pigeon(
        static_cast<std::size_t>(holes + 1));
    std::vector<std::vector<Lit>> hole(static_cast<std::size_t>(holes));
    for (int p = 0; p <= holes; ++p) {
      for (int h = 0; h < holes; ++h) {
        const Lit l = Lit::pos(solver.new_var());
        pigeon[static_cast<std::size_t>(p)].push_back(l);
        hole[static_cast<std::size_t>(h)].push_back(l);
      }
    }
    for (const auto& row : pigeon) cnf.at_least_one(row);
    for (const auto& col : hole) cnf.at_most_one(col);
    benchmark::DoNotOptimize(solver.solve());
  }
}
BENCHMARK(BM_Pigeonhole)->Arg(5)->Arg(7)->Arg(8);

void BM_SequentialCounterEncoding(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    SatSolver solver;
    CnfBuilder cnf(solver);
    std::vector<Lit> lits;
    for (int i = 0; i < n; ++i) lits.push_back(Lit::pos(solver.new_var()));
    cnf.at_most_k(lits, n / 4);
    benchmark::DoNotOptimize(solver.num_clauses());
  }
}
BENCHMARK(BM_SequentialCounterEncoding)->Arg(64)->Arg(256)->Arg(1024);

void BM_AssumptionReuseVsRebuild(benchmark::State& state) {
  // The incremental time session's query pattern: one formula, a sequence
  // of closely related queries under rotating selector assumptions.
  // Arg 0 == 0: ONE warm solver answers all queries (learnt clauses and
  // activities retained). Arg 0 == 1: a fresh solver per query (the
  // rebuild-per-instance reference pattern). Reported counters expose the
  // reuse (learnt clauses retained across queries, assumptions used).
  const int holes = 7;
  const int queries = 8;
  std::uint64_t learnt_retained = 0;
  std::uint64_t assumptions_used = 0;
  auto build_guarded_php = [&](SatSolver& solver,
                               std::vector<SatVar>& guards) {
    // PHP(holes+1, holes), with each pigeon's at-least-one row guarded by
    // one of `queries` selector literals — assuming selector q activates
    // the contradiction, exactly like a horizon selector activates a
    // window.
    for (int q = 0; q < queries; ++q) guards.push_back(solver.new_var());
    std::vector<std::vector<Lit>> pigeon(static_cast<std::size_t>(holes + 1));
    std::vector<std::vector<Lit>> hole(static_cast<std::size_t>(holes));
    CnfBuilder cnf(solver);
    for (int p = 0; p <= holes; ++p) {
      for (int h = 0; h < holes; ++h) {
        const Lit l = Lit::pos(solver.new_var());
        pigeon[static_cast<std::size_t>(p)].push_back(l);
        hole[static_cast<std::size_t>(h)].push_back(l);
      }
    }
    for (const auto& row : pigeon) {
      for (int q = 0; q < queries; ++q) {
        std::vector<Lit> clause = row;
        clause.push_back(Lit::neg(guards[static_cast<std::size_t>(q)]));
        solver.add_clause(std::move(clause));
      }
    }
    for (const auto& col : hole) cnf.at_most_one(col);
  };
  const bool fresh_per_query = state.range(0) == 1;
  for (auto _ : state) {
    if (fresh_per_query) {
      for (int q = 0; q < queries; ++q) {
        SatSolver solver;
        std::vector<SatVar> guards;
        build_guarded_php(solver, guards);
        ++assumptions_used;
        benchmark::DoNotOptimize(solver.solve_assuming(
            {Lit::pos(guards[static_cast<std::size_t>(q)])}));
      }
    } else {
      SatSolver solver;
      std::vector<SatVar> guards;
      build_guarded_php(solver, guards);
      for (int q = 0; q < queries; ++q) {
        ++assumptions_used;
        benchmark::DoNotOptimize(solver.solve_assuming(
            {Lit::pos(guards[static_cast<std::size_t>(q)])}));
        learnt_retained +=
            static_cast<std::uint64_t>(solver.num_learnts());
      }
    }
  }
  state.counters["learnt_retained"] = benchmark::Counter(
      static_cast<double>(learnt_retained), benchmark::Counter::kAvgIterations);
  state.counters["assumptions_used"] = benchmark::Counter(
      static_cast<double>(assumptions_used), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_AssumptionReuseVsRebuild)->Arg(0)->Arg(1);

void BM_FailedAssumptionExtraction(benchmark::State& state) {
  // Long implication chains; assuming head and ~tail is refuted and the
  // final-conflict analysis must name only the two culprits.
  const int n = static_cast<int>(state.range(0));
  SatSolver solver;
  std::vector<SatVar> v;
  for (int i = 0; i < n; ++i) v.push_back(solver.new_var());
  for (int i = 0; i + 1 < n; ++i) {
    solver.add_binary(Lit::neg(v[static_cast<std::size_t>(i)]),
                      Lit::pos(v[static_cast<std::size_t>(i + 1)]));
  }
  for (auto _ : state) {
    const SatStatus status = solver.solve_assuming(
        {Lit::pos(v[0]), Lit::neg(v[static_cast<std::size_t>(n - 1)])});
    benchmark::DoNotOptimize(status);
    benchmark::DoNotOptimize(solver.failed_assumptions().size());
  }
}
BENCHMARK(BM_FailedAssumptionExtraction)->Arg(256)->Arg(4096);

void BM_IncrementalBlocking(benchmark::State& state) {
  // Model enumeration via blocking clauses — the decoupled mapper's retry
  // pattern.
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    SatSolver solver;
    std::vector<SatVar> vars;
    for (int i = 0; i < n; ++i) vars.push_back(solver.new_var());
    int models = 0;
    while (solver.solve() == SatStatus::kSat && models < 64) {
      ++models;
      std::vector<Lit> block;
      for (const SatVar v : vars) {
        block.push_back(Lit(v, solver.model_value(v)));
      }
      if (!solver.add_clause(block)) break;
    }
    benchmark::DoNotOptimize(models);
  }
}
BENCHMARK(BM_IncrementalBlocking)->Arg(10)->Arg(16);

}  // namespace

BENCHMARK_MAIN();
