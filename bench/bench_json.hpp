// Minimal streaming JSON writer for machine-readable bench output.
//
// The bench harnesses historically printed ASCII tables only; perf tracking
// across PRs needs stable machine-readable records (BENCH_space.json).
// This is deliberately tiny: objects/arrays/keys/scalars, comma management
// via a nesting stack, string escaping per RFC 8259. No reading, no DOM.
#ifndef MONOMAP_BENCH_BENCH_JSON_HPP
#define MONOMAP_BENCH_BENCH_JSON_HPP

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace monomap::bench {

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_(os) {}

  JsonWriter& begin_object() {
    separator();
    os_ << '{';
    stack_.push_back(false);
    return *this;
  }
  JsonWriter& end_object() {
    stack_.pop_back();
    os_ << '}';
    return *this;
  }
  JsonWriter& begin_array() {
    separator();
    os_ << '[';
    stack_.push_back(false);
    return *this;
  }
  JsonWriter& end_array() {
    stack_.pop_back();
    os_ << ']';
    return *this;
  }

  JsonWriter& key(std::string_view name) {
    separator();
    write_string(name);
    os_ << ':';
    pending_value_ = true;
    return *this;
  }

  JsonWriter& value(std::string_view v) {
    separator();
    write_string(v);
    return *this;
  }
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(bool v) {
    separator();
    os_ << (v ? "true" : "false");
    return *this;
  }
  JsonWriter& value(double v) {
    separator();
    if (std::isfinite(v)) {
      // Shortest round-trip-ish: fixed 9 significant digits is plenty for
      // timings and ratios and keeps the output diff-friendly.
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.9g", v);
      os_ << buf;
    } else {
      os_ << "null";  // JSON has no inf/nan
    }
    return *this;
  }
  JsonWriter& value(std::int64_t v) {
    separator();
    os_ << v;
    return *this;
  }
  JsonWriter& value(std::uint64_t v) {
    separator();
    os_ << v;
    return *this;
  }
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }

  /// Convenience: key + scalar in one call.
  template <typename T>
  JsonWriter& field(std::string_view name, T v) {
    key(name);
    return value(v);
  }

 private:
  void separator() {
    if (pending_value_) {
      pending_value_ = false;  // value directly after a key: no comma
      return;
    }
    if (!stack_.empty()) {
      if (stack_.back()) os_ << ',';
      stack_.back() = true;
    }
  }

  void write_string(std::string_view s) {
    os_ << '"';
    for (const char c : s) {
      switch (c) {
        case '"': os_ << "\\\""; break;
        case '\\': os_ << "\\\\"; break;
        case '\n': os_ << "\\n"; break;
        case '\r': os_ << "\\r"; break;
        case '\t': os_ << "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x", c);
            os_ << buf;
          } else {
            os_ << c;
          }
      }
    }
    os_ << '"';
  }

  std::ostream& os_;
  std::vector<bool> stack_;  // per nesting level: "wrote a first element"
  bool pending_value_ = false;
};

/// Median of a (copied) sample vector; 0 when empty.
inline double median(std::vector<double> xs) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const std::size_t mid = xs.size() / 2;
  return xs.size() % 2 == 1 ? xs[mid] : 0.5 * (xs[mid - 1] + xs[mid]);
}

}  // namespace monomap::bench

#endif  // MONOMAP_BENCH_BENCH_JSON_HPP
