// Regenerates the paper's Table III: for each CGRA size (2x2, 5x5, 10x10,
// 20x20) and each of the 17 benchmarks, compile with the decoupled
// monomorphism mapper (time + space phases reported separately) and with the
// coupled SAT-MapIt-style baseline; report ΔT, the compilation-time ratio
// (CTR) and the achieved II against the paper's values.
//
// Usage: bench_table3 [--grids 2,5,10,20] [--timeout S] [--json]
// Env:   MONOMAP_TIMEOUT_S overrides the per-solve timeout (paper: 4000 s).
//
// Averages follow the paper's convention: rows where either tool timed out
// are excluded from the ΔT / CTR averages. --json swaps the ASCII tables
// for machine-readable records (one object per (grid, benchmark) row).
#include <algorithm>
#include <iostream>
#include <string>

#include "bench_common.hpp"
#include "bench_json.hpp"
#include "mapper/coupled_mapper.hpp"
#include "mapper/decoupled_mapper.hpp"
#include "support/table.hpp"
#include "workloads/suite.hpp"

int main(int argc, char** argv) {
  using namespace monomap;
  using namespace monomap::bench;

  std::vector<int> grids(kPaperGridSizes.begin(), kPaperGridSizes.end());
  double timeout = timeout_s();
  bool json_mode = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--grids" && i + 1 < argc) grids = parse_grids(argv[i + 1]);
    if (arg == "--timeout" && i + 1 < argc) timeout = std::atof(argv[i + 1]);
    if (arg == "--json") json_mode = true;
  }

  JsonWriter json(std::cout);
  if (json_mode) {
    json.begin_object();
    json.field("bench", "bench_table3");
    json.field("timeout_s", timeout);
    json.key("rows");
    json.begin_array();
  } else {
    std::cout << "Table III reproduction — per-solve timeout " << timeout
              << " s (paper: 4000 s; set MONOMAP_TIMEOUT_S to raise)\n";
  }

  for (const int side : grids) {
    const CgraArch arch = CgraArch::square(side);
    if (!json_mode) {
      std::cout << "\n=== " << side << "x" << side << " CGRA ("
                << arch.num_pes() << " PEs) ===\n";
    }
    AsciiTable table({"Benchmark", "Nodes", "Time", "Space", "Baseline",
                      "dT", "CTR", "II", "II(paper)", "mII", "mII(paper)"});
    double sum_mono = 0.0;
    double sum_base = 0.0;
    double sum_ctr = 0.0;
    double sum_ctr_censored = 0.0;  // baseline TO counted at the timeout
    int censored_rows = 0;
    int complete_rows = 0;
    int mono_solved = 0;
    int base_solved = 0;

    std::size_t grid_index = 0;
    for (std::size_t g = 0; g < kPaperGridSizes.size(); ++g) {
      if (kPaperGridSizes[g] == side) grid_index = g;
    }
    const bool paper_grid =
        std::find(kPaperGridSizes.begin(), kPaperGridSizes.end(), side) !=
        kPaperGridSizes.end();

    for (const Benchmark& b : benchmark_suite()) {
      DecoupledMapperOptions mono_opt;
      mono_opt.timeout_s = timeout;
      const MapResult mono = DecoupledMapper(mono_opt).map(b.dfg, arch);

      CoupledMapperOptions base_opt;
      base_opt.timeout_s = timeout;
      const CoupledMapResult base = CoupledSatMapper(base_opt).map(b.dfg, arch);

      const bool mono_to = !mono.success;
      const bool base_to = !base.success;
      if (!mono_to) ++mono_solved;
      if (!base_to) ++base_solved;

      std::string dt = "-";
      std::string ctr = "-";
      if (!mono_to && !base_to) {
        dt = format_fixed(mono.total_s - base.total_s, 2);
        const double ratio = base.total_s / std::max(mono.total_s, 1e-4);
        ctr = format_fixed(ratio, 2);
        sum_mono += mono.total_s;
        sum_base += base.total_s;
        sum_ctr += ratio;
        ++complete_rows;
      }
      if (!mono_to) {
        // Censored view: a baseline timeout contributes at least `timeout`
        // seconds — a lower bound on the true ratio.
        sum_ctr_censored += (base_to ? timeout : base.total_s) /
                            std::max(mono.total_s, 1e-4);
        ++censored_rows;
      }
      if (json_mode) {
        json.begin_object();
        json.field("grid", side);
        json.field("suite", b.name);
        json.field("nodes", b.dfg.num_nodes());
        json.field("decoupled_success", !mono_to);
        json.field("time_phase_s", mono.time_phase_s);
        json.field("space_phase_s", mono.space_phase_s);
        json.field("total_s", mono.total_s);
        json.field("schedules_tried", mono.schedules_tried);
        json.field("space_nodes_expanded", mono.last_space.nodes_expanded);
        json.field("space_backtracks", mono.last_space.backtracks);
        // Per-II solver-reuse stats of the incremental time engine.
        json.field("time_sat_calls", mono.time_stats.sat_calls);
        json.field("time_sessions", mono.time_stats.sessions_created);
        json.field("time_horizon_extensions",
                   mono.time_stats.horizon_extensions);
        json.field("time_assumptions_used", mono.time_stats.assumptions_used);
        json.field("time_learnt_retained", mono.time_stats.learnt_retained);
        json.field("time_nogoods_added", mono.time_stats.nogoods_added);
        json.field("time_narrow_nogoods", mono.time_stats.narrow_nogoods);
        json.field("baseline_success", !base_to);
        json.field("baseline_s", base.total_s);
        json.field("ii", mono_to ? -1 : mono.ii);
        json.field("mii", mono.mii.mii());
        if (paper_grid) {
          json.field("paper_ii", b.paper_ii[grid_index]);
          json.field("paper_mii", b.paper_mii[grid_index]);
        }
        json.end_object();
        continue;  // the ASCII table is never printed in --json mode
      }
      table.add_row(
          {b.name, std::to_string(b.dfg.num_nodes()),
           mono_to ? "TO" : format_time_s(mono.time_phase_s),
           mono_to ? "TO" : format_time_s(mono.space_phase_s),
           base_to ? "TO" : format_time_s(base.total_s), dt, ctr,
           mono_to ? "-" : std::to_string(mono.ii),
           paper_grid ? (b.paper_ii[grid_index] < 0
                             ? std::string("TO")
                             : std::to_string(b.paper_ii[grid_index]))
                      : "-",
           std::to_string(mono.mii.mii()),
           paper_grid ? std::to_string(b.paper_mii[grid_index]) : "-"});
    }
    if (json_mode) continue;
    table.add_separator();
    table.add_row({"Average (no-TO rows)", "-",
                   complete_rows ? format_fixed(sum_mono / complete_rows, 3)
                                 : "-",
                   "", complete_rows
                           ? format_fixed(sum_base / complete_rows, 3)
                           : "-",
                   complete_rows
                       ? format_fixed((sum_mono - sum_base) / complete_rows, 2)
                       : "-",
                   complete_rows ? format_fixed(sum_ctr / complete_rows, 2)
                                 : "-",
                   "", "", "", ""});
    table.print(std::cout);
    std::cout << "decoupled solved " << mono_solved << "/17, baseline solved "
              << base_solved << "/17";
    if (complete_rows > 0) {
      std::cout << "; average CTR (speedup) over " << complete_rows
                << " comparable rows: " << format_fixed(sum_ctr / complete_rows, 2)
                << "x";
    }
    if (censored_rows > 0) {
      std::cout << "\nlower-bound CTR counting baseline timeouts at "
                << timeout << " s: >= "
                << format_fixed(sum_ctr_censored / censored_rows, 2) << "x";
    }
    std::cout << "\npaper averages: 2x2: 30.85x, 5x5: 103.76x, 10x10: 887.84x,"
                 " 20x20: 10288.89x (4000 s timeout)\n";
  }
  if (json_mode) {
    json.end_array();
    json.end_object();
    std::cout << '\n';
  }
  return 0;
}
