// Exact vs heuristic mapping (paper Sec. II motivation).
//
// Compares the decoupled exact mapper against the DRESC-style simulated
// annealer on the full suite: achieved II (quality) and compile time. The
// literature's claim — annealing yields longer compile times and worse II
// as instances grow — becomes measurable here.
//
// Usage: bench_heuristic [grid_side] [--timeout S] (default 4)
#include <iostream>
#include <string>

#include "bench_common.hpp"
#include "mapper/annealing_mapper.hpp"
#include "mapper/decoupled_mapper.hpp"
#include "support/table.hpp"
#include "workloads/suite.hpp"

int main(int argc, char** argv) {
  using namespace monomap;
  using namespace monomap::bench;

  int side = 4;
  double timeout = timeout_s();
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--timeout" && i + 1 < argc) {
      timeout = std::atof(argv[++i]);
    } else if (arg[0] != '-') {
      side = std::atoi(arg.c_str());
    }
  }
  const CgraArch arch = CgraArch::square(side);
  std::cout << "Exact (decoupled) vs heuristic (annealing) on "
            << arch.description() << " (timeout " << timeout << " s)\n\n";

  AsciiTable table({"Benchmark", "mII", "II exact", "II anneal", "t exact[s]",
                    "t anneal[s]", "anneal moves"});
  int exact_better = 0;
  int comparable = 0;
  for (const Benchmark& b : benchmark_suite()) {
    DecoupledMapperOptions exact_opt;
    exact_opt.timeout_s = timeout;
    const MapResult exact = DecoupledMapper(exact_opt).map(b.dfg, arch);
    AnnealingOptions heur_opt;
    heur_opt.timeout_s = timeout;
    const AnnealResult heur = AnnealingMapper(heur_opt).map(b.dfg, arch);
    if (exact.success && heur.success) {
      ++comparable;
      if (exact.ii < heur.ii) ++exact_better;
    }
    table.add_row({b.name, std::to_string(exact.mii.mii()),
                   exact.success ? std::to_string(exact.ii) : "TO",
                   heur.success ? std::to_string(heur.ii) : "TO",
                   exact.success ? format_time_s(exact.total_s) : "TO",
                   heur.success ? format_time_s(heur.total_s) : "TO",
                   std::to_string(heur.moves)});
  }
  table.print(std::cout);
  std::cout << "\nexact mapper achieved a strictly lower II in "
            << exact_better << "/" << comparable << " comparable cases\n";
  return 0;
}
