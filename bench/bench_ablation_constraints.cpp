// Ablation A1/A2: value of the time-formulation constraint families.
//
// The paper's decoupling hinges on the capacity + connectivity constraints
// making time solutions spatially realisable (Sec. IV-D). This harness maps
// the suite under four configurations and reports how many schedules the
// space phase had to reject before finding a placement:
//
//   strict      — default: connectivity with the self term (exactly
//                 necessary per slot)
//   paper       — the literal Sec. IV-B3 constraint (no self term)
//   no-conn     — connectivity disabled
//   no-capacity — capacity disabled as well (dependencies only)
//
// Usage: bench_ablation_constraints [grid_side] [--timeout S]
#include <iostream>
#include <string>

#include "bench_common.hpp"
#include "mapper/decoupled_mapper.hpp"
#include "support/table.hpp"
#include "workloads/suite.hpp"

int main(int argc, char** argv) {
  using namespace monomap;
  using namespace monomap::bench;

  int side = 4;
  double timeout = timeout_s();
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--timeout" && i + 1 < argc) {
      timeout = std::atof(argv[++i]);
    } else if (arg[0] != '-') {
      side = std::atoi(arg.c_str());
    }
  }
  const CgraArch arch = CgraArch::square(side);

  struct Config {
    const char* name;
    TimeConstraintOptions constraints;
  };
  Config configs[4];
  configs[0].name = "strict";
  configs[1].name = "paper";
  configs[1].constraints.strict_connectivity = false;
  configs[2].name = "no-conn";
  configs[2].constraints.strict_connectivity = false;
  configs[2].constraints.connectivity = false;
  configs[3].name = "no-capacity";
  configs[3].constraints.strict_connectivity = false;
  configs[3].constraints.connectivity = false;
  configs[3].constraints.capacity = false;

  std::cout << "Ablation A1/A2 — constraint families on " << arch.description()
            << " (timeout " << timeout << " s)\n\n";
  AsciiTable table({"Config", "Solved", "Sum II", "Schedules tried",
                    "Total time[s]"});
  for (const Config& cfg : configs) {
    int solved = 0;
    int sum_ii = 0;
    int schedules = 0;
    double total = 0.0;
    for (const Benchmark& b : benchmark_suite()) {
      DecoupledMapperOptions opt;
      opt.timeout_s = timeout;
      opt.time.constraints = cfg.constraints;
      const MapResult r = DecoupledMapper(opt).map(b.dfg, arch);
      total += r.total_s;
      schedules += r.schedules_tried;
      if (r.success) {
        ++solved;
        sum_ii += r.ii;
      }
    }
    table.add_row({cfg.name, std::to_string(solved) + "/17",
                   std::to_string(sum_ii), std::to_string(schedules),
                   format_fixed(total, 2)});
  }
  table.print(std::cout);
  std::cout << "\nreading: fewer constraint families -> more schedules burnt\n"
               "in the space phase (or outright failures), which is exactly\n"
               "the gap the paper's capacity/connectivity constraints close.\n";
  return 0;
}
