// Micro-benchmark A5: monomorphism-search scaling (google-benchmark).
//
// The paper's space phase stays cheap as the grid grows because candidate
// neighbourhoods are constant-size; this tracks search time vs grid side
// and vs DFG size on schedule-realistic inputs.
#include <benchmark/benchmark.h>

#include "space/monomorphism.hpp"
#include "timing/time_solver.hpp"
#include "workloads/suite.hpp"
#include "workloads/synthetic.hpp"

namespace {

using namespace monomap;

struct Prepared {
  const Dfg* dfg;
  std::vector<int> labels;
  int ii;
};

Prepared prepare(const Dfg& dfg, const CgraArch& arch) {
  TimeSolver solver(dfg, arch);
  const auto sol = solver.next(Deadline(30.0));
  Prepared p{&dfg, {}, 1};
  if (sol.has_value()) {
    p.ii = sol->ii;
    for (NodeId v = 0; v < dfg.num_nodes(); ++v) {
      p.labels.push_back(sol->label(v));
    }
  }
  return p;
}

void BM_MonoVsGridSide(benchmark::State& state) {
  const int side = static_cast<int>(state.range(0));
  const CgraArch arch = CgraArch::square(side);
  const Benchmark& b = benchmark_by_name("fft");
  const Prepared p = prepare(b.dfg, arch);
  if (p.labels.empty()) {
    state.SkipWithError("no schedule");
    return;
  }
  for (auto _ : state) {
    const SpaceResult r = find_monomorphism(*p.dfg, arch, p.labels, p.ii);
    benchmark::DoNotOptimize(r.found);
  }
}
BENCHMARK(BM_MonoVsGridSide)->Arg(4)->Arg(8)->Arg(12)->Arg(20);

void BM_MonoVsDfgSize(benchmark::State& state) {
  const int nodes = static_cast<int>(state.range(0));
  const CgraArch arch = CgraArch::square(8);
  SyntheticSpec spec;
  spec.num_nodes = nodes;
  spec.seed = 11;
  static std::vector<Dfg> keep;  // keep DFGs alive across iterations
  keep.push_back(random_dfg(spec));
  const Dfg& dfg = keep.back();
  const Prepared p = prepare(dfg, arch);
  if (p.labels.empty()) {
    state.SkipWithError("no schedule");
    return;
  }
  for (auto _ : state) {
    const SpaceResult r = find_monomorphism(dfg, arch, p.labels, p.ii);
    benchmark::DoNotOptimize(r.found);
  }
}
BENCHMARK(BM_MonoVsDfgSize)->Arg(16)->Arg(32)->Arg(64);

void BM_MonoHardestSuiteCase(benchmark::State& state) {
  // hotspot3D is the suite's widest DFG and the paper's space-timeout case.
  const CgraArch arch = CgraArch::square(static_cast<int>(state.range(0)));
  const Benchmark& b = benchmark_by_name("hotspot3D");
  TimeSolver solver(b.dfg, arch);
  // Collect a handful of schedules; measure total space effort over them.
  std::vector<Prepared> schedules;
  for (int round = 0; round < 4; ++round) {
    const auto sol = solver.next(Deadline(30.0));
    if (!sol.has_value()) break;
    Prepared p{&b.dfg, {}, sol->ii};
    for (NodeId v = 0; v < b.dfg.num_nodes(); ++v) {
      p.labels.push_back(sol->label(v));
    }
    schedules.push_back(std::move(p));
  }
  if (schedules.empty()) {
    state.SkipWithError("no schedule");
    return;
  }
  for (auto _ : state) {
    std::uint64_t total = 0;
    for (const Prepared& p : schedules) {
      SpaceOptions opt;
      opt.max_backtracks = 50'000;
      const SpaceResult r =
          find_monomorphism(*p.dfg, arch, p.labels, p.ii, opt);
      total += r.backtracks;
    }
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_MonoHardestSuiteCase)->Arg(5)->Arg(10);

}  // namespace

BENCHMARK_MAIN();
