// Micro-benchmark A5: monomorphism-search scaling.
//
// Two modes:
//  * default — google-benchmark timings of search time vs grid side and vs
//    DFG size on schedule-realistic inputs (the paper's space phase stays
//    cheap as the grid grows because candidate neighbourhoods are
//    constant-size);
//  * --json [--grid N] [--repeats R] — machine-readable engine comparison
//    over the whole workload suite (suite, grid, II, seconds,
//    nodes_expanded, backtracks per engine, plus a portfolio-vs-single
//    section), recorded in BENCH_space.json to track the perf trajectory
//    across PRs.
#include <benchmark/benchmark.h>

#include <cstring>
#include <iostream>

#include "bench_json.hpp"
#include "mapper/decoupled_mapper.hpp"
#include "space/monomorphism.hpp"
#include "timing/time_solver.hpp"
#include "workloads/suite.hpp"
#include "workloads/synthetic.hpp"

namespace {

using namespace monomap;
using monomap::bench::JsonWriter;
using monomap::bench::median;

struct Prepared {
  const Dfg* dfg;
  std::vector<int> labels;
  int ii;
};

Prepared prepare(const Dfg& dfg, const CgraArch& arch) {
  TimeSolver solver(dfg, arch);
  const auto sol = solver.next(Deadline(30.0));
  Prepared p{&dfg, {}, 1};
  if (sol.has_value()) {
    p.ii = sol->ii;
    for (NodeId v = 0; v < dfg.num_nodes(); ++v) {
      p.labels.push_back(sol->label(v));
    }
  }
  return p;
}

void BM_MonoVsGridSide(benchmark::State& state) {
  const int side = static_cast<int>(state.range(0));
  const CgraArch arch = CgraArch::square(side);
  const Benchmark& b = benchmark_by_name("fft");
  const Prepared p = prepare(b.dfg, arch);
  if (p.labels.empty()) {
    state.SkipWithError("no schedule");
    return;
  }
  for (auto _ : state) {
    const SpaceResult r = find_monomorphism(*p.dfg, arch, p.labels, p.ii);
    benchmark::DoNotOptimize(r.found);
  }
}
BENCHMARK(BM_MonoVsGridSide)->Arg(4)->Arg(8)->Arg(12)->Arg(20);

void BM_MonoVsDfgSize(benchmark::State& state) {
  const int nodes = static_cast<int>(state.range(0));
  const CgraArch arch = CgraArch::square(8);
  SyntheticSpec spec;
  spec.num_nodes = nodes;
  spec.seed = 11;
  static std::vector<Dfg> keep;  // keep DFGs alive across iterations
  keep.push_back(random_dfg(spec));
  const Dfg& dfg = keep.back();
  const Prepared p = prepare(dfg, arch);
  if (p.labels.empty()) {
    state.SkipWithError("no schedule");
    return;
  }
  for (auto _ : state) {
    const SpaceResult r = find_monomorphism(dfg, arch, p.labels, p.ii);
    benchmark::DoNotOptimize(r.found);
  }
}
BENCHMARK(BM_MonoVsDfgSize)->Arg(16)->Arg(32)->Arg(64);

void BM_MonoEngineComparison(benchmark::State& state) {
  // bitset (Arg 0) vs reference (Arg 1) on the same schedule.
  const CgraArch arch = CgraArch::square(8);
  const Benchmark& b = benchmark_by_name("fft");
  const Prepared p = prepare(b.dfg, arch);
  if (p.labels.empty()) {
    state.SkipWithError("no schedule");
    return;
  }
  SpaceOptions opt;
  opt.engine = state.range(0) == 0 ? SpaceEngine::kBitset
                                   : SpaceEngine::kReference;
  for (auto _ : state) {
    const SpaceResult r = find_monomorphism(*p.dfg, arch, p.labels, p.ii, opt);
    benchmark::DoNotOptimize(r.found);
  }
}
BENCHMARK(BM_MonoEngineComparison)->Arg(0)->Arg(1);

void BM_MonoHardestSuiteCase(benchmark::State& state) {
  // hotspot3D is the suite's widest DFG and the paper's space-timeout case.
  const CgraArch arch = CgraArch::square(static_cast<int>(state.range(0)));
  const Benchmark& b = benchmark_by_name("hotspot3D");
  TimeSolver solver(b.dfg, arch);
  // Collect a handful of schedules; measure total space effort over them.
  std::vector<Prepared> schedules;
  for (int round = 0; round < 4; ++round) {
    const auto sol = solver.next(Deadline(30.0));
    if (!sol.has_value()) break;
    Prepared p{&b.dfg, {}, sol->ii};
    for (NodeId v = 0; v < b.dfg.num_nodes(); ++v) {
      p.labels.push_back(sol->label(v));
    }
    schedules.push_back(std::move(p));
  }
  if (schedules.empty()) {
    state.SkipWithError("no schedule");
    return;
  }
  for (auto _ : state) {
    std::uint64_t total = 0;
    for (const Prepared& p : schedules) {
      SpaceOptions opt;
      opt.max_backtracks = 50'000;
      const SpaceResult r =
          find_monomorphism(*p.dfg, arch, p.labels, p.ii, opt);
      total += r.backtracks;
    }
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_MonoHardestSuiteCase)->Arg(5)->Arg(10);

// --- --json mode -----------------------------------------------------------

/// Per-(benchmark, engine) record: median-of-repeats search time plus the
/// effort counters of the last run (deterministic, so identical each run).
void run_json_mode(int grid, int repeats) {
  const CgraArch arch = CgraArch::square(grid);
  JsonWriter json(std::cout);
  json.begin_object();
  json.field("bench", "bench_micro_space");
  json.field("grid", grid);
  json.field("topology", topology_name(arch.topology()));
  json.field("repeats", repeats);

  std::vector<double> ratios;
  json.key("space");
  json.begin_array();
  for (const Benchmark& b : benchmark_suite()) {
    const Prepared p = prepare(b.dfg, arch);
    if (p.labels.empty()) continue;
    double bitset_median = 0.0;
    for (const SpaceEngine engine :
         {SpaceEngine::kBitset, SpaceEngine::kReference}) {
      SpaceOptions opt;
      opt.engine = engine;
      std::vector<double> seconds;
      SpaceResult last;
      for (int r = 0; r < repeats; ++r) {
        last = find_monomorphism(*p.dfg, arch, p.labels, p.ii, opt);
        seconds.push_back(last.seconds);
      }
      const double med = median(seconds);
      if (engine == SpaceEngine::kBitset) {
        bitset_median = med;
      } else if (bitset_median > 0.0) {
        ratios.push_back(med / bitset_median);
      }
      json.begin_object();
      json.field("suite", b.name);
      json.field("engine", to_string(engine));
      json.field("ii", p.ii);
      json.field("found", last.found);
      json.field("truncated", last.truncated);
      json.field("seconds", med);
      json.field("nodes_expanded", last.nodes_expanded);
      json.field("backtracks", last.backtracks);
      json.field("backjumps", last.backjumps);
      json.field("max_depth", last.max_depth);
      json.end_object();
    }
  }
  json.end_array();

  // Portfolio vs the best single configuration, full decoupled solves.
  json.key("portfolio");
  json.begin_array();
  for (const Benchmark& b : benchmark_suite()) {
    DecoupledMapperOptions opt;
    opt.timeout_s = 30.0;
    const DecoupledMapper mapper(opt);
    std::vector<double> single_s;
    std::vector<double> racing_s;
    MapResult single;
    MapResult racing;
    for (int r = 0; r < repeats; ++r) {
      // Both sides on the same basis: full wall-clock around the call
      // (thread spawn/join and validation included).
      Stopwatch single_wall;
      single = mapper.map(b.dfg, arch);
      single_s.push_back(single_wall.elapsed_s());
      Stopwatch racing_wall;
      racing = mapper.map_portfolio(b.dfg, arch);
      racing_s.push_back(racing_wall.elapsed_s());
    }
    // No winner_config field, and ii comes from the deterministic single
    // solve: the threaded race's winner (and thus its II) is scheduling-
    // dependent, and this record is diffed across PRs.
    json.begin_object();
    json.field("suite", b.name);
    json.field("single_success", single.success);
    json.field("single_s", median(single_s));
    json.field("portfolio_success", racing.success);
    json.field("portfolio_s", median(racing_s));
    json.field("ii", single.success ? single.ii : -1);
    json.end_object();
  }
  json.end_array();

  json.key("summary");
  json.begin_object();
  json.field("median_speedup_reference_over_bitset", median(ratios));
  json.end_object();
  json.end_object();
  std::cout << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  int grid = 8;
  int repeats = 5;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json = true;
    if (std::strcmp(argv[i], "--grid") == 0 && i + 1 < argc) {
      grid = std::atoi(argv[i + 1]);
    }
    if (std::strcmp(argv[i], "--repeats") == 0 && i + 1 < argc) {
      repeats = std::atoi(argv[i + 1]);
    }
  }
  if (json) {
    run_json_mode(std::max(grid, 1), std::max(repeats, 1));
    return 0;
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
