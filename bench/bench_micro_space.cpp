// Micro-benchmark A5: monomorphism-search scaling.
//
// Two modes:
//  * default — google-benchmark timings of search time vs grid side and vs
//    DFG size on schedule-realistic inputs (the paper's space phase stays
//    cheap as the grid grows because candidate neighbourhoods are
//    constant-size);
//  * --json [--grids 8,16,32,64] [--suites a,b] [--repeats R] —
//    machine-readable engine comparison per grid section (suite, grid, II,
//    seconds, effort counters per engine), recorded in BENCH_space.json to
//    track the perf trajectory across PRs. Grid 8 compares the bitset
//    engine against the scan-based reference and carries the portfolio
//    section; larger grids (multi-word domains) compare the dispatched
//    SIMD bitset engine against the same engine pinned to the scalar
//    kernels ("bitset-scalar"), on suite DFGs plus a scaled synthetic
//    layered DFG whose schedule is computed directly (layer mod II), so
//    the section cost stays in the space phase.
#include <benchmark/benchmark.h>

#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "mapper/decoupled_mapper.hpp"
#include "space/monomorphism.hpp"
#include "support/simd.hpp"
#include "timing/time_solver.hpp"
#include "workloads/suite.hpp"
#include "workloads/synthetic.hpp"

namespace {

using namespace monomap;
using monomap::bench::JsonWriter;
using monomap::bench::median;

struct Prepared {
  const Dfg* dfg;
  std::vector<int> labels;
  int ii;
};

Prepared prepare(const Dfg& dfg, const CgraArch& arch) {
  TimeSolver solver(dfg, arch);
  const auto sol = solver.next(Deadline(30.0));
  Prepared p{&dfg, {}, 1};
  if (sol.has_value()) {
    p.ii = sol->ii;
    for (NodeId v = 0; v < dfg.num_nodes(); ++v) {
      p.labels.push_back(sol->label(v));
    }
  }
  return p;
}

void BM_MonoVsGridSide(benchmark::State& state) {
  const int side = static_cast<int>(state.range(0));
  const CgraArch arch = CgraArch::square(side);
  const Benchmark& b = benchmark_by_name("fft");
  const Prepared p = prepare(b.dfg, arch);
  if (p.labels.empty()) {
    state.SkipWithError("no schedule");
    return;
  }
  for (auto _ : state) {
    const SpaceResult r = find_monomorphism(*p.dfg, arch, p.labels, p.ii);
    benchmark::DoNotOptimize(r.found);
  }
}
BENCHMARK(BM_MonoVsGridSide)->Arg(4)->Arg(8)->Arg(12)->Arg(20);

void BM_MonoVsDfgSize(benchmark::State& state) {
  const int nodes = static_cast<int>(state.range(0));
  const CgraArch arch = CgraArch::square(8);
  SyntheticSpec spec;
  spec.num_nodes = nodes;
  spec.seed = 11;
  static std::vector<Dfg> keep;  // keep DFGs alive across iterations
  keep.push_back(random_dfg(spec));
  const Dfg& dfg = keep.back();
  const Prepared p = prepare(dfg, arch);
  if (p.labels.empty()) {
    state.SkipWithError("no schedule");
    return;
  }
  for (auto _ : state) {
    const SpaceResult r = find_monomorphism(dfg, arch, p.labels, p.ii);
    benchmark::DoNotOptimize(r.found);
  }
}
BENCHMARK(BM_MonoVsDfgSize)->Arg(16)->Arg(32)->Arg(64);

void BM_MonoEngineComparison(benchmark::State& state) {
  // bitset (Arg 0) vs reference (Arg 1) on the same schedule.
  const CgraArch arch = CgraArch::square(8);
  const Benchmark& b = benchmark_by_name("fft");
  const Prepared p = prepare(b.dfg, arch);
  if (p.labels.empty()) {
    state.SkipWithError("no schedule");
    return;
  }
  SpaceOptions opt;
  opt.engine = state.range(0) == 0 ? SpaceEngine::kBitset
                                   : SpaceEngine::kReference;
  for (auto _ : state) {
    const SpaceResult r = find_monomorphism(*p.dfg, arch, p.labels, p.ii, opt);
    benchmark::DoNotOptimize(r.found);
  }
}
BENCHMARK(BM_MonoEngineComparison)->Arg(0)->Arg(1);

void BM_MonoHardestSuiteCase(benchmark::State& state) {
  // hotspot3D is the suite's widest DFG and the paper's space-timeout case.
  const CgraArch arch = CgraArch::square(static_cast<int>(state.range(0)));
  const Benchmark& b = benchmark_by_name("hotspot3D");
  TimeSolver solver(b.dfg, arch);
  // Collect a handful of schedules; measure total space effort over them.
  std::vector<Prepared> schedules;
  for (int round = 0; round < 4; ++round) {
    const auto sol = solver.next(Deadline(30.0));
    if (!sol.has_value()) break;
    Prepared p{&b.dfg, {}, sol->ii};
    for (NodeId v = 0; v < b.dfg.num_nodes(); ++v) {
      p.labels.push_back(sol->label(v));
    }
    schedules.push_back(std::move(p));
  }
  if (schedules.empty()) {
    state.SkipWithError("no schedule");
    return;
  }
  for (auto _ : state) {
    std::uint64_t total = 0;
    for (const Prepared& p : schedules) {
      SpaceOptions opt;
      opt.max_backtracks = 50'000;
      const SpaceResult r =
          find_monomorphism(*p.dfg, arch, p.labels, p.ii, opt);
      total += r.backtracks;
    }
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_MonoHardestSuiteCase)->Arg(5)->Arg(10);

// --- --json mode -----------------------------------------------------------

/// One space-section row: median-of-repeats search time plus the effort
/// counters of the last run (deterministic, so identical each run).
void emit_space_row(JsonWriter& json, const std::string& suite, int grid,
                    const char* engine, int ii, double med,
                    const SpaceResult& last) {
  json.begin_object();
  json.field("suite", suite);
  json.field("grid", grid);
  json.field("engine", engine);
  json.field("ii", ii);
  json.field("found", last.found);
  json.field("truncated", last.truncated);
  json.field("memory_out", last.memory_out);
  json.field("seconds", med);
  json.field("nodes_expanded", last.nodes_expanded);
  json.field("backtracks", last.backtracks);
  json.field("backjumps", last.backjumps);
  json.field("max_depth", last.max_depth);
  json.field("words_per_domain", last.words_per_domain);
  json.field("trail_words_saved", last.trail_words_saved);
  json.field("multiplicity_prunings", last.multiplicity_prunings);
  json.end_object();
}

/// Median-of-repeats wall time; `last` receives the final (deterministic)
/// result for the counter fields.
double run_search(const Prepared& p, const CgraArch& arch,
                  const SpaceOptions& opt, int repeats, SpaceResult& last) {
  std::vector<double> seconds;
  for (int r = 0; r < repeats; ++r) {
    last = find_monomorphism(*p.dfg, arch, p.labels, p.ii, opt);
    seconds.push_back(last.seconds);
  }
  return median(seconds);
}

bool suite_selected(const std::vector<std::string>& filter,
                    const std::string& name) {
  if (filter.empty()) return true;
  for (const std::string& f : filter) {
    if (f == name) return true;
  }
  return false;
}

/// Scaled synthetic workload for the multi-word grid sections: a layered
/// DFG whose schedule is the layer index mod II — valid by construction
/// (layered edges span consecutive layers; register persistence imposes no
/// slot-adjacency constraint) and free of TimeSolver cost, so the section
/// measures the space engine only.
Prepared prepare_layered(const Dfg& dfg, int width, int ii) {
  Prepared p{&dfg, {}, ii};
  for (NodeId v = 0; v < dfg.num_nodes(); ++v) {
    p.labels.push_back((v / width) % ii);
  }
  return p;
}

void run_json_mode(const std::vector<int>& grids, int repeats,
                   const std::vector<std::string>& suite_filter) {
  JsonWriter json(std::cout);
  json.begin_object();
  json.field("bench", "bench_micro_space");
  json.key("grids");
  json.begin_array();
  for (const int g : grids) json.value(g);
  json.end_array();
  json.field("topology", topology_name(Topology::kMesh));
  json.field("repeats", repeats);
  json.field("simd", simd::level_name(simd::active_level()));

  std::vector<double> ref_ratios;           // grid 8: reference / bitset
  std::vector<int> scalar_grids;            // grids with scalar/simd rows
  std::vector<std::vector<double>> scalar_ratios;  // parallel to the above

  json.key("space");
  json.begin_array();
  for (const int grid : grids) {
    const CgraArch arch = CgraArch::square(grid);
    // Multi-word regime: compare dispatched kernels against the scalar
    // reference kernels on the identical search (bit-identical traces, so
    // the counters must match row-for-row and only `seconds` may differ).
    const bool multi_word = arch.num_pes() > 2 * PeSet::kWordBits;
    std::vector<double>* scalar_ratio = nullptr;
    if (multi_word) {
      scalar_grids.push_back(grid);
      scalar_ratio = &scalar_ratios.emplace_back();
    }

    std::vector<std::pair<std::string, Prepared>> cases;
    std::vector<Dfg> keep;  // layered DFGs outlive their Prepared views
    for (const Benchmark& b : benchmark_suite()) {
      if (!suite_selected(suite_filter, b.name)) continue;
      Prepared p = prepare(b.dfg, arch);
      if (p.labels.empty()) continue;
      cases.emplace_back(b.name, std::move(p));
    }
    if (multi_word) {
      // Depth/width/II grow with the fabric so the domains stay busy.
      const int layers = grid == 16 ? 6 : grid == 32 ? 8 : 10;
      const int width = grid == 16 ? 10 : grid == 32 ? 14 : 18;
      const int ii = grid == 16 ? 3 : grid == 32 ? 4 : 5;
      const std::string name =
          "layered-" + std::to_string(layers) + "x" + std::to_string(width);
      if (suite_selected(suite_filter, name)) {
        // Seeds picked so the root degree filter does not insta-refute the
        // instance — the row must exercise propagation, not a precheck.
        keep.push_back(layered_dfg(
            layers, width, static_cast<std::uint64_t>(16 + grid)));
        cases.emplace_back(name,
                           prepare_layered(keep.back(), width, ii));
      }
    }

    for (const auto& [name, p] : cases) {
      SpaceOptions opt;
      SpaceResult last;
      const double bitset_med = run_search(p, arch, opt, repeats, last);
      emit_space_row(json, name, grid, "bitset", p.ii, bitset_med, last);
      if (!multi_word) {
        opt.engine = SpaceEngine::kReference;
        SpaceResult ref_last;
        const double med = run_search(p, arch, opt, repeats, ref_last);
        if (bitset_med > 0.0) ref_ratios.push_back(med / bitset_med);
        emit_space_row(json, name, grid, "reference", p.ii, med, ref_last);
      } else {
        const simd::Level saved = simd::active_level();
        simd::set_level(simd::Level::kScalar);
        SpaceResult scalar_last;
        const double med = run_search(p, arch, opt, repeats, scalar_last);
        simd::set_level(saved);
        if (bitset_med > 0.0) scalar_ratio->push_back(med / bitset_med);
        emit_space_row(json, name, grid, "bitset-scalar", p.ii, med,
                       scalar_last);
      }
    }
  }
  json.end_array();

  // Portfolio and the speculative cross-II race vs the single sequential
  // configuration, full decoupled solves. Grid 8 only: the section tracks
  // the small-fabric mapper end to end.
  json.key("portfolio");
  json.begin_array();
  for (const int grid : grids) {
    if (grid != 8) continue;
    const CgraArch arch = CgraArch::square(grid);
    for (const Benchmark& b : benchmark_suite()) {
      if (!suite_selected(suite_filter, b.name)) continue;
      DecoupledMapperOptions opt;
      opt.timeout_s = 30.0;
      const DecoupledMapper mapper(opt);
      std::vector<double> single_s;
      std::vector<double> racing_s;
      std::vector<double> speculative_s;
      MapResult single;
      MapResult racing;
      MapResult speculative;
      for (int r = 0; r < repeats; ++r) {
        // All sides on the same basis: full wall-clock around the call
        // (thread spawn/join and validation included).
        Stopwatch single_wall;
        single = mapper.map(b.dfg, arch);
        single_s.push_back(single_wall.elapsed_s());
        Stopwatch racing_wall;
        racing = mapper.map_portfolio(b.dfg, arch);
        racing_s.push_back(racing_wall.elapsed_s());
        Stopwatch speculative_wall;
        SpeculativeOptions sopt;
        sopt.share_nogoods = true;  // throughput flavour; counters active
        speculative = mapper.map_speculative(b.dfg, arch, sopt);
        speculative_s.push_back(speculative_wall.elapsed_s());
      }
      // No winner_config field, and ii comes from the deterministic single
      // solve: the threaded portfolio's winner (and thus its II) is
      // scheduling-dependent, and this record is diffed across PRs — as
      // is the warm speculative race's II (certificate arrival order can
      // move the policy's give-up points), so only its wall clock and
      // certificate-traffic counters ride along.
      json.begin_object();
      json.field("suite", b.name);
      json.field("grid", grid);
      json.field("single_success", single.success);
      json.field("single_s", median(single_s));
      json.field("portfolio_success", racing.success);
      json.field("portfolio_s", median(racing_s));
      json.field("speculative_success", speculative.success);
      json.field("speculative_s", median(speculative_s));
      json.field("speculative_hits", speculative.speculative_hits);
      json.field("nogoods_lifted_cross_ii",
                 speculative.nogoods_lifted_cross_ii);
      json.field("steals", speculative.steals);
      json.field("ii", single.success ? single.ii : -1);
      json.end_object();
    }
  }
  json.end_array();

  json.key("summary");
  json.begin_object();
  json.field("median_speedup_reference_over_bitset", median(ref_ratios));
  json.key("median_speedup_scalar_over_simd");
  json.begin_object();
  for (std::size_t i = 0; i < scalar_grids.size(); ++i) {
    json.field(std::to_string(scalar_grids[i]), median(scalar_ratios[i]));
  }
  json.end_object();
  json.end_object();
  json.end_object();
  std::cout << '\n';
}

std::vector<std::string> split_csv(const char* arg) {
  std::vector<std::string> out;
  std::string cur;
  for (const char* c = arg; *c != '\0'; ++c) {
    if (*c == ',') {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(*c);
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<int> grids;
  std::vector<std::string> suites;
  int repeats = 5;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json = true;
    // --grid N (single, legacy) or --grids 8,16,32 (sections in order).
    if ((std::strcmp(argv[i], "--grid") == 0 ||
         std::strcmp(argv[i], "--grids") == 0) &&
        i + 1 < argc) {
      for (const std::string& g : split_csv(argv[i + 1])) {
        const int side = std::atoi(g.c_str());
        if (side >= 1) grids.push_back(side);
      }
    }
    if (std::strcmp(argv[i], "--suites") == 0 && i + 1 < argc) {
      suites = split_csv(argv[i + 1]);
    }
    if (std::strcmp(argv[i], "--repeats") == 0 && i + 1 < argc) {
      repeats = std::atoi(argv[i + 1]);
    }
  }
  if (json) {
    if (grids.empty()) grids.push_back(8);
    run_json_mode(grids, std::max(repeats, 1), suites);
    return 0;
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
