// Micro-benchmark A5: monomorphism-search scaling.
//
// Two modes:
//  * default — google-benchmark timings of search time vs grid side and vs
//    DFG size on schedule-realistic inputs (the paper's space phase stays
//    cheap as the grid grows because candidate neighbourhoods are
//    constant-size);
//  * --json [--grids 8,16,32,64] [--suites a,b] [--repeats R] —
//    machine-readable engine comparison per grid section (suite, grid, II,
//    seconds, effort counters per engine), recorded in BENCH_space.json to
//    track the perf trajectory across PRs. Grid 8 compares the bitset
//    engine against the scan-based reference and carries the portfolio
//    section; larger grids (multi-word domains) compare the dispatched
//    SIMD bitset engine against the same engine pinned to the scalar
//    kernels ("bitset-scalar") and against the untiled domain layout
//    ("bitset-untiled", occupancy skipping off), on suite DFGs plus a
//    scaled synthetic layered DFG whose schedule is computed directly
//    (layer mod II) and satisfiable placeable-grid instances (one sized
//    against each fabric, plus the 64x64 32x32-patch suite at II 4-6), so
//    the section cost stays in the space phase and covers both refutation
//    and placement throughput. The summary's untiled-over-tiled medians
//    pool the placeable-* placement rows per grid.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstring>
#include <iostream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "mapper/decoupled_mapper.hpp"
#include "space/monomorphism.hpp"
#include "support/simd.hpp"
#include "timing/time_solver.hpp"
#include "workloads/suite.hpp"
#include "workloads/synthetic.hpp"

namespace {

using namespace monomap;
using monomap::bench::JsonWriter;
using monomap::bench::median;

struct Prepared {
  const Dfg* dfg;
  std::vector<int> labels;
  int ii;
};

Prepared prepare(const Dfg& dfg, const CgraArch& arch) {
  TimeSolver solver(dfg, arch);
  const auto sol = solver.next(Deadline(30.0));
  Prepared p{&dfg, {}, 1};
  if (sol.has_value()) {
    p.ii = sol->ii;
    for (NodeId v = 0; v < dfg.num_nodes(); ++v) {
      p.labels.push_back(sol->label(v));
    }
  }
  return p;
}

void BM_MonoVsGridSide(benchmark::State& state) {
  const int side = static_cast<int>(state.range(0));
  const CgraArch arch = CgraArch::square(side);
  const Benchmark& b = benchmark_by_name("fft");
  const Prepared p = prepare(b.dfg, arch);
  if (p.labels.empty()) {
    state.SkipWithError("no schedule");
    return;
  }
  for (auto _ : state) {
    const SpaceResult r = find_monomorphism(*p.dfg, arch, p.labels, p.ii);
    benchmark::DoNotOptimize(r.found);
  }
}
BENCHMARK(BM_MonoVsGridSide)->Arg(4)->Arg(8)->Arg(12)->Arg(20);

void BM_MonoVsDfgSize(benchmark::State& state) {
  const int nodes = static_cast<int>(state.range(0));
  const CgraArch arch = CgraArch::square(8);
  SyntheticSpec spec;
  spec.num_nodes = nodes;
  spec.seed = 11;
  static std::vector<Dfg> keep;  // keep DFGs alive across iterations
  keep.push_back(random_dfg(spec));
  const Dfg& dfg = keep.back();
  const Prepared p = prepare(dfg, arch);
  if (p.labels.empty()) {
    state.SkipWithError("no schedule");
    return;
  }
  for (auto _ : state) {
    const SpaceResult r = find_monomorphism(dfg, arch, p.labels, p.ii);
    benchmark::DoNotOptimize(r.found);
  }
}
BENCHMARK(BM_MonoVsDfgSize)->Arg(16)->Arg(32)->Arg(64);

void BM_MonoEngineComparison(benchmark::State& state) {
  // bitset (Arg 0) vs reference (Arg 1) on the same schedule.
  const CgraArch arch = CgraArch::square(8);
  const Benchmark& b = benchmark_by_name("fft");
  const Prepared p = prepare(b.dfg, arch);
  if (p.labels.empty()) {
    state.SkipWithError("no schedule");
    return;
  }
  SpaceOptions opt;
  opt.engine = state.range(0) == 0 ? SpaceEngine::kBitset
                                   : SpaceEngine::kReference;
  for (auto _ : state) {
    const SpaceResult r = find_monomorphism(*p.dfg, arch, p.labels, p.ii, opt);
    benchmark::DoNotOptimize(r.found);
  }
}
BENCHMARK(BM_MonoEngineComparison)->Arg(0)->Arg(1);

void BM_MonoHardestSuiteCase(benchmark::State& state) {
  // hotspot3D is the suite's widest DFG and the paper's space-timeout case.
  const CgraArch arch = CgraArch::square(static_cast<int>(state.range(0)));
  const Benchmark& b = benchmark_by_name("hotspot3D");
  TimeSolver solver(b.dfg, arch);
  // Collect a handful of schedules; measure total space effort over them.
  std::vector<Prepared> schedules;
  for (int round = 0; round < 4; ++round) {
    const auto sol = solver.next(Deadline(30.0));
    if (!sol.has_value()) break;
    Prepared p{&b.dfg, {}, sol->ii};
    for (NodeId v = 0; v < b.dfg.num_nodes(); ++v) {
      p.labels.push_back(sol->label(v));
    }
    schedules.push_back(std::move(p));
  }
  if (schedules.empty()) {
    state.SkipWithError("no schedule");
    return;
  }
  for (auto _ : state) {
    std::uint64_t total = 0;
    for (const Prepared& p : schedules) {
      SpaceOptions opt;
      opt.max_backtracks = 50'000;
      const SpaceResult r =
          find_monomorphism(*p.dfg, arch, p.labels, p.ii, opt);
      total += r.backtracks;
    }
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_MonoHardestSuiteCase)->Arg(5)->Arg(10);

// --- --json mode -----------------------------------------------------------

/// One space-section row: median-of-repeats search time plus the effort
/// counters of the last run (deterministic, so identical each run).
void emit_space_row(JsonWriter& json, const std::string& suite, int grid,
                    const char* engine, int ii, double med,
                    const SpaceResult& last) {
  json.begin_object();
  json.field("suite", suite);
  json.field("grid", grid);
  json.field("engine", engine);
  json.field("ii", ii);
  json.field("found", last.found);
  json.field("truncated", last.truncated);
  json.field("memory_out", last.memory_out);
  json.field("seconds", med);
  json.field("nodes_expanded", last.nodes_expanded);
  json.field("backtracks", last.backtracks);
  json.field("backjumps", last.backjumps);
  json.field("max_depth", last.max_depth);
  json.field("words_per_domain", last.words_per_domain);
  json.field("trail_words_saved", last.trail_words_saved);
  json.field("multiplicity_prunings", last.multiplicity_prunings);
  json.field("tiles_skipped", last.tiles_skipped);
  json.field("domain_bytes_touched", last.domain_bytes_touched);
  json.end_object();
}

/// Median-of-repeats wall time; `last` receives the final (deterministic)
/// result for the counter fields.
double run_search(const Prepared& p, const CgraArch& arch,
                  const SpaceOptions& opt, int repeats, SpaceResult& last) {
  std::vector<double> seconds;
  for (int r = 0; r < repeats; ++r) {
    last = find_monomorphism(*p.dfg, arch, p.labels, p.ii, opt);
    seconds.push_back(last.seconds);
  }
  return median(seconds);
}

bool suite_selected(const std::vector<std::string>& filter,
                    const std::string& name) {
  if (filter.empty()) return true;
  for (const std::string& f : filter) {
    if (f == name) return true;
  }
  return false;
}

/// One multi-word case: the dispatched-SIMD tiled engine, the scalar
/// kernels and the untiled layout, timed *interleaved within each rep*
/// after one untimed warm-up. The clock on shared hosts ramps and wanders
/// on the timescale of a whole repeats-block, so timing the variants in
/// consecutive blocks systematically biases whichever runs first
/// (measured: the same instance pair swings from 0.45x to 1.4x purely by
/// block order). Adjacent runs share clock state, so the drift cancels
/// out of the ratios. Emits the three rows and appends this case's
/// summary inputs.
void run_multi_word_case(JsonWriter& json, const std::string& name, int grid,
                         const Prepared& p, const CgraArch& arch, int repeats,
                         std::vector<double>& scalar_ratio,
                         std::vector<double>& untiled_ratio,
                         std::vector<double>& grid_bytes) {
  SpaceOptions opt;
  find_monomorphism(*p.dfg, arch, p.labels, p.ii, opt);  // warm-up, untimed
  std::vector<double> tiled_s, scalar_s, untiled_s;
  SpaceResult last, scalar_last, untiled_last;
  for (int r = 0; r < repeats; ++r) {
    last = find_monomorphism(*p.dfg, arch, p.labels, p.ii, opt);
    tiled_s.push_back(last.seconds);
    const simd::Level saved = simd::active_level();
    simd::set_level(simd::Level::kScalar);
    scalar_last = find_monomorphism(*p.dfg, arch, p.labels, p.ii, opt);
    scalar_s.push_back(scalar_last.seconds);
    simd::set_level(saved);
    // Untiled layout (occupancy skipping off): identical trace and
    // counters except tiles_skipped == 0 and more bytes touched, so
    // untiled / tiled seconds isolates the cache-blocking win.
    const bool tiles_saved = simd::set_tile_skipping(false);
    untiled_last = find_monomorphism(*p.dfg, arch, p.labels, p.ii, opt);
    untiled_s.push_back(untiled_last.seconds);
    simd::set_tile_skipping(tiles_saved);
  }
  const double bitset_med = median(tiled_s);
  emit_space_row(json, name, grid, "bitset", p.ii, bitset_med, last);
  grid_bytes.push_back(static_cast<double>(last.domain_bytes_touched));
  if (bitset_med > 0.0) scalar_ratio.push_back(median(scalar_s) / bitset_med);
  emit_space_row(json, name, grid, "bitset-scalar", p.ii, median(scalar_s),
                 scalar_last);
  // The layout summary pools the satisfiable placement rows only:
  // refutation rows (suite + layered) spend their time in narrow domains
  // where both layouts touch the same lines, so folding them in would
  // measure instance mix, not the layout. Their untiled rows are still
  // recorded individually.
  if (bitset_med > 0.0 && name.rfind("placeable-", 0) == 0) {
    untiled_ratio.push_back(median(untiled_s) / bitset_med);
  }
  emit_space_row(json, name, grid, "bitset-untiled", p.ii, median(untiled_s),
                 untiled_last);
}

/// The 64x64 placement cases: the full 32x32 mesh-patch trio at II 4-6 —
/// the wide-domain, moderate-backtrack regime the cache-blocked layout
/// targets (low II dilutes the comparison with the mono1 sweep's
/// layout-neutral scalar work; high-II variants of these patches
/// backtrack thousands of times and churn the tile trail instead) — then
/// the spec_for-sized instance. The untiled/tiled summary pools exactly
/// the placeable-* rows, so these four carry the 64x64 acceptance median.
void append_placeable64_cases(
    const std::vector<std::string>& suite_filter, const CgraArch& arch,
    std::vector<Dfg>& keep,
    std::vector<std::pair<std::string, Prepared>>& cases) {
  struct PatchCase {
    int ii;
    std::uint64_t seed;
  };
  for (const PatchCase& pc :
       {PatchCase{4, 77}, PatchCase{5, 154}, PatchCase{6, 154}}) {
    PlaceableGridSpec ps;
    ps.rows = 32;
    ps.cols = 32;
    ps.ii = pc.ii;
    ps.edge_keep = 1.0;  // full patch: maximal propagation traffic
    ps.seed = pc.seed;
    const std::string nm = "placeable-32x32-ii" + std::to_string(pc.ii);
    if (suite_selected(suite_filter, nm)) {
      std::vector<int> labels;
      keep.push_back(placeable_grid_dfg(ps, &labels));
      cases.emplace_back(nm, Prepared{&keep.back(), std::move(labels), ps.ii});
    }
  }
  const PlaceableGridSpec pspec =
      placeable_spec_for(arch, 2, static_cast<std::uint64_t>(90 + 64));
  const std::string pname = "placeable-" + std::to_string(pspec.rows) + "x" +
                            std::to_string(pspec.cols);
  if (suite_selected(suite_filter, pname)) {
    std::vector<int> labels;
    keep.push_back(placeable_grid_dfg(pspec, &labels));
    cases.emplace_back(pname,
                       Prepared{&keep.back(), std::move(labels), pspec.ii});
  }
}

/// Scaled synthetic workload for the multi-word grid sections: a layered
/// DFG whose schedule is the layer index mod II — valid by construction
/// (layered edges span consecutive layers; register persistence imposes no
/// slot-adjacency constraint) and free of TimeSolver cost, so the section
/// measures the space engine only.
Prepared prepare_layered(const Dfg& dfg, int width, int ii) {
  Prepared p{&dfg, {}, ii};
  for (NodeId v = 0; v < dfg.num_nodes(); ++v) {
    p.labels.push_back((v / width) % ii);
  }
  return p;
}

void run_json_mode(const std::vector<int>& grids, int repeats,
                   const std::vector<std::string>& suite_filter) {
  JsonWriter json(std::cout);
  json.begin_object();
  json.field("bench", "bench_micro_space");
  json.key("grids");
  json.begin_array();
  for (const int g : grids) json.value(g);
  json.end_array();
  json.field("topology", topology_name(Topology::kMesh));
  json.field("repeats", repeats);
  json.field("simd", simd::level_name(simd::active_level()));

  std::vector<double> ref_ratios;  // grid 8: reference / bitset
  // Per-grid summary inputs for the multi-word sections.
  std::map<int, std::vector<double>> scalar_ratios;   // scalar / simd
  std::map<int, std::vector<double>> untiled_ratios;  // untiled / tiled
  std::map<int, std::vector<double>> bytes_touched;   // tiled-row bytes

  json.key("space");
  json.begin_array();

  // The 64x64 placement (layout-comparison) suite runs before every other
  // section, in near-fresh process state. The untiled-over-tiled
  // differential is partly a memory-system effect beyond cache lines:
  // long-lived process state — the allocator adapting its mmap/trim
  // thresholds after earlier sections' large instances, hugepage
  // promotion of a heap that has been hot for seconds — measurably
  // compresses it (same instance pair: ~1.4x when measured first in the
  // process, ~1.2x after a single 1444-node case has run). A production
  // mapping is one fresh process per instance, so the clean-state numbers
  // are the representative ones; rows are self-describing (suite/grid/
  // engine fields), so their position in the array is free.
  std::set<std::string> hoisted;
  if (std::find(grids.begin(), grids.end(), 64) != grids.end()) {
    const CgraArch arch = CgraArch::square(64);
    std::vector<std::pair<std::string, Prepared>> cases;
    std::vector<Dfg> keep;
    keep.reserve(4);  // Prepared holds Dfg*; growth must not relocate
    append_placeable64_cases(suite_filter, arch, keep, cases);
    for (const auto& [name, p] : cases) {
      run_multi_word_case(json, name, 64, p, arch, repeats,
                          scalar_ratios[64], untiled_ratios[64],
                          bytes_touched[64]);
      hoisted.insert(name);
    }
  }

  for (const int grid : grids) {
    const CgraArch arch = CgraArch::square(grid);
    // Multi-word regime: compare dispatched kernels against the scalar
    // reference kernels on the identical search (bit-identical traces, so
    // the counters must match row-for-row and only `seconds` may differ).
    const bool multi_word = arch.num_pes() > 2 * PeSet::kWordBits;

    std::vector<std::pair<std::string, Prepared>> cases;
    std::vector<Dfg> keep;  // generated DFGs outlive their Prepared views
    keep.reserve(8);  // Prepared holds Dfg*; growth must not relocate
    for (const Benchmark& b : benchmark_suite()) {
      if (!suite_selected(suite_filter, b.name)) continue;
      Prepared p = prepare(b.dfg, arch);
      if (p.labels.empty()) continue;
      cases.emplace_back(b.name, std::move(p));
    }
    if (multi_word) {
      // Depth/width/II grow with the fabric so the domains stay busy.
      const int layers = grid == 16 ? 6 : grid == 32 ? 8 : 10;
      const int width = grid == 16 ? 10 : grid == 32 ? 14 : 18;
      const int ii = grid == 16 ? 3 : grid == 32 ? 4 : 5;
      const std::string name =
          "layered-" + std::to_string(layers) + "x" + std::to_string(width);
      if (suite_selected(suite_filter, name)) {
        // Seeds picked so the root degree filter does not insta-refute the
        // instance — the row must exercise propagation, not a precheck.
        keep.push_back(layered_dfg(
            layers, width, static_cast<std::uint64_t>(16 + grid)));
        cases.emplace_back(name,
                           prepare_layered(keep.back(), width, ii));
      }
      if (grid == 64) {
        // The grid-64 placement cases already ran in the hoisted
        // clean-state pass above.
      } else {
        // Satisfiable placement instance sized against the fabric: the
        // search must find an embedding (witness exists by construction),
        // so this row measures placement throughput, complementing the
        // refutation-heavy layered row.
        const PlaceableGridSpec pspec =
            placeable_spec_for(arch, 2, static_cast<std::uint64_t>(90 + grid));
        const std::string pname = "placeable-" + std::to_string(pspec.rows) +
                                  "x" + std::to_string(pspec.cols);
        if (suite_selected(suite_filter, pname)) {
          std::vector<int> labels;
          keep.push_back(placeable_grid_dfg(pspec, &labels));
          cases.emplace_back(pname,
                             Prepared{&keep.back(), std::move(labels),
                                      pspec.ii});
        }
      }
    }

    for (const auto& [name, p] : cases) {
      if (hoisted.count(name) != 0) continue;
      if (!multi_word) {
        SpaceOptions opt;
        SpaceResult last;
        const double bitset_med = run_search(p, arch, opt, repeats, last);
        emit_space_row(json, name, grid, "bitset", p.ii, bitset_med, last);
        opt.engine = SpaceEngine::kReference;
        SpaceResult ref_last;
        const double med = run_search(p, arch, opt, repeats, ref_last);
        if (bitset_med > 0.0) ref_ratios.push_back(med / bitset_med);
        emit_space_row(json, name, grid, "reference", p.ii, med, ref_last);
      } else {
        run_multi_word_case(json, name, grid, p, arch, repeats,
                            scalar_ratios[grid], untiled_ratios[grid],
                            bytes_touched[grid]);
      }
    }
  }
  json.end_array();

  // Portfolio and the speculative cross-II race vs the single sequential
  // configuration, full decoupled solves. Grid 8 only: the section tracks
  // the small-fabric mapper end to end.
  json.key("portfolio");
  json.begin_array();
  for (const int grid : grids) {
    if (grid != 8) continue;
    const CgraArch arch = CgraArch::square(grid);
    for (const Benchmark& b : benchmark_suite()) {
      if (!suite_selected(suite_filter, b.name)) continue;
      DecoupledMapperOptions opt;
      opt.timeout_s = 30.0;
      const DecoupledMapper mapper(opt);
      std::vector<double> single_s;
      std::vector<double> racing_s;
      std::vector<double> speculative_s;
      MapResult single;
      MapResult racing;
      MapResult speculative;
      for (int r = 0; r < repeats; ++r) {
        // All sides on the same basis: full wall-clock around the call
        // (thread spawn/join and validation included).
        Stopwatch single_wall;
        single = mapper.map(b.dfg, arch);
        single_s.push_back(single_wall.elapsed_s());
        Stopwatch racing_wall;
        racing = mapper.map_portfolio(b.dfg, arch);
        racing_s.push_back(racing_wall.elapsed_s());
        Stopwatch speculative_wall;
        SpeculativeOptions sopt;
        sopt.share_nogoods = true;  // throughput flavour; counters active
        speculative = mapper.map_speculative(b.dfg, arch, sopt);
        speculative_s.push_back(speculative_wall.elapsed_s());
      }
      // No winner_config field, and ii comes from the deterministic single
      // solve: the threaded portfolio's winner (and thus its II) is
      // scheduling-dependent, and this record is diffed across PRs — as
      // is the warm speculative race's II (certificate arrival order can
      // move the policy's give-up points), so only its wall clock and
      // certificate-traffic counters ride along.
      json.begin_object();
      json.field("suite", b.name);
      json.field("grid", grid);
      json.field("single_success", single.success);
      json.field("single_s", median(single_s));
      json.field("portfolio_success", racing.success);
      json.field("portfolio_s", median(racing_s));
      json.field("speculative_success", speculative.success);
      json.field("speculative_s", median(speculative_s));
      json.field("speculative_hits", speculative.speculative_hits);
      json.field("nogoods_lifted_cross_ii",
                 speculative.nogoods_lifted_cross_ii);
      json.field("steals", speculative.steals);
      json.field("ii", single.success ? single.ii : -1);
      json.end_object();
    }
  }
  json.end_array();

  json.key("summary");
  json.begin_object();
  json.field("median_speedup_reference_over_bitset", median(ref_ratios));
  json.key("median_speedup_scalar_over_simd");
  json.begin_object();
  for (const auto& [grid, ratios] : scalar_ratios) {
    json.field(std::to_string(grid), median(ratios));
  }
  json.end_object();
  json.key("median_speedup_untiled_over_tiled");
  json.begin_object();
  for (const auto& [grid, ratios] : untiled_ratios) {
    if (ratios.empty()) continue;  // grid ran no placement rows
    json.field(std::to_string(grid), median(ratios));
  }
  json.end_object();
  json.key("median_bytes_touched");
  json.begin_object();
  for (const auto& [grid, bytes] : bytes_touched) {
    json.field(std::to_string(grid), median(bytes));
  }
  json.end_object();
  json.end_object();
  json.end_object();
  std::cout << '\n';
}

std::vector<std::string> split_csv(const char* arg) {
  std::vector<std::string> out;
  std::string cur;
  for (const char* c = arg; *c != '\0'; ++c) {
    if (*c == ',') {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(*c);
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<int> grids;
  std::vector<std::string> suites;
  int repeats = 5;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json = true;
    // --grid N (single, legacy) or --grids 8,16,32 (sections in order).
    if ((std::strcmp(argv[i], "--grid") == 0 ||
         std::strcmp(argv[i], "--grids") == 0) &&
        i + 1 < argc) {
      for (const std::string& g : split_csv(argv[i + 1])) {
        const int side = std::atoi(g.c_str());
        if (side >= 1) grids.push_back(side);
      }
    }
    if (std::strcmp(argv[i], "--suites") == 0 && i + 1 < argc) {
      suites = split_csv(argv[i + 1]);
    }
    if (std::strcmp(argv[i], "--repeats") == 0 && i + 1 < argc) {
      repeats = std::atoi(argv[i + 1]);
    }
  }
  if (json) {
    if (grids.empty()) grids.push_back(8);
    run_json_mode(grids, std::max(repeats, 1), suites);
    return 0;
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
