// Regenerates paper Table I (ASAP/ALAP/MobS), Table II (KMS, II=4) and the
// Fig. 2b-style full modulo schedule of the running example on a 2x2 CGRA.
#include <iostream>

#include "mapper/decoupled_mapper.hpp"
#include "mapper/modulo_expansion.hpp"
#include "sched/kms.hpp"
#include "sched/mobility.hpp"
#include "workloads/running_example.hpp"

int main() {
  using namespace monomap;

  const Dfg dfg = running_example_dfg();
  const CgraArch arch = CgraArch::square(2);

  std::cout << "=== Table I: ASAP, ALAP and MobS for the running example ===\n";
  const MobilitySchedule mobs(dfg);
  std::cout << mobs.to_table() << '\n';

  std::cout << "=== Table II: KMS for the MobS above and II = 4 ===\n"
            << "(entries are node_fold; fold = T div II; "
            << "interleaved iterations = ";
  const Kms kms(mobs, 4);
  std::cout << kms.interleaved_iterations() << ")\n" << kms.to_table() << '\n';

  std::cout << "=== Fig. 2b: space-time mapping at II = 4 on 2x2 ===\n";
  DecoupledMapperOptions opt;
  opt.timeout_s = 60.0;
  const MapResult r = DecoupledMapper(opt).map(dfg, arch);
  if (!r.success) {
    std::cerr << "mapping failed: " << r.failure_reason << '\n';
    return 1;
  }
  std::cout << "II=" << r.ii << " (paper: 4), mII=" << r.mii.mii()
            << " (paper: 4)\n\n"
            << mapping_to_string(dfg, arch, r.mapping) << '\n';
  const ModuloExpansion expansion(r.mapping, r.mapping.num_stages() + 2);
  std::cout << expansion.to_string(dfg);
  return 0;
}
