// Micro-benchmark A7: time-phase engine comparison.
//
// Two modes:
//  * default — google-benchmark timings of the incremental vs reference
//    time engines on representative solves (single-shot and
//    horizon-extension-heavy cases);
//  * --json [--grid N] [--repeats R] — machine-readable end-to-end map()
//    wall-clock comparison over the whole workload suite per engine, plus
//    the per-II solver-reuse counters (sessions, horizon extensions,
//    assumptions used, learnt clauses retained, nogoods added), recorded in
//    BENCH_time.json to track the time-phase perf trajectory across PRs.
//    The "hard" section additionally records engine="speculative" rows —
//    the cross-II race (map_speculative) with its certificate-traffic
//    counters (speculative_hits, nogoods_lifted_cross_ii, steals).
#include <benchmark/benchmark.h>

#include <cstring>
#include <iostream>

#include "bench_json.hpp"
#include "mapper/decoupled_mapper.hpp"
#include "support/stopwatch.hpp"
#include "timing/time_solver.hpp"
#include "workloads/suite.hpp"

namespace {

using namespace monomap;
using monomap::bench::JsonWriter;
using monomap::bench::median;

TimeSolverOptions engine_options(TimeEngine engine) {
  TimeSolverOptions opt;
  opt.engine = engine;
  return opt;
}

void BM_TimeFirstSolution(benchmark::State& state) {
  // First schedule of a mid-size suite benchmark (Arg 0: engine).
  const CgraArch arch = CgraArch::square(8);
  const Benchmark& b = benchmark_by_name("fft");
  const TimeEngine engine = state.range(0) == 0 ? TimeEngine::kIncremental
                                                : TimeEngine::kReference;
  for (auto _ : state) {
    TimeSolver solver(b.dfg, arch, engine_options(engine));
    const auto sol = solver.next(Deadline(30.0));
    benchmark::DoNotOptimize(sol.has_value());
  }
}
BENCHMARK(BM_TimeFirstSolution)->Arg(0)->Arg(1);

void BM_TimeScheduleEnumeration(benchmark::State& state) {
  // The mapper's retry pattern: enumerate 8 distinct schedules (Arg 0:
  // engine). The incremental engine answers re-solves from a warm solver.
  const CgraArch arch = CgraArch::square(8);
  const Benchmark& b = benchmark_by_name("gsm");
  const TimeEngine engine = state.range(0) == 0 ? TimeEngine::kIncremental
                                                : TimeEngine::kReference;
  for (auto _ : state) {
    TimeSolver solver(b.dfg, arch, engine_options(engine));
    int yielded = 0;
    while (yielded < 8 && solver.next(Deadline(30.0)).has_value()) {
      ++yielded;
    }
    benchmark::DoNotOptimize(yielded);
  }
}
BENCHMARK(BM_TimeScheduleEnumeration)->Arg(0)->Arg(1);

void BM_TimeHorizonExtensions(benchmark::State& state) {
  // Capacity-bound chain on one PE: the solver must walk several horizon
  // extensions before the first schedule appears (Arg 0: engine).
  const Dfg dfg = Dfg::from_edges(
      "chain6", 6,
      {{0, 1, 0}, {1, 2, 0}, {2, 3, 0}, {0, 4, 0}, {1, 5, 0}});
  const CgraArch arch(1, 1);
  const TimeEngine engine = state.range(0) == 0 ? TimeEngine::kIncremental
                                                : TimeEngine::kReference;
  for (auto _ : state) {
    TimeSolver solver(dfg, arch, engine_options(engine));
    const auto sol = solver.next(Deadline(30.0));
    benchmark::DoNotOptimize(sol.has_value());
  }
}
BENCHMARK(BM_TimeHorizonExtensions)->Arg(0)->Arg(1);

// --- --json mode -----------------------------------------------------------

/// Per-(benchmark, engine) record: median-of-repeats end-to-end map() wall
/// clock plus the solver-reuse counters of the last run.
void run_json_mode(int grid, int repeats) {
  const CgraArch arch = CgraArch::square(grid);
  JsonWriter json(std::cout);
  json.begin_object();
  json.field("bench", "bench_micro_time");
  json.field("grid", grid);
  json.field("topology", topology_name(arch.topology()));
  json.field("repeats", repeats);

  std::vector<double> ratios;
  json.key("time");
  json.begin_array();
  for (const Benchmark& b : benchmark_suite()) {
    double incremental_median = 0.0;
    for (const TimeEngine engine :
         {TimeEngine::kIncremental, TimeEngine::kReference}) {
      DecoupledMapperOptions opt;
      opt.timeout_s = 60.0;
      opt.time.engine = engine;
      const DecoupledMapper mapper(opt);
      std::vector<double> seconds;
      MapResult last;
      for (int r = 0; r < repeats; ++r) {
        Stopwatch wall;
        last = mapper.map(b.dfg, arch);
        seconds.push_back(wall.elapsed_s());
      }
      const double med = median(seconds);
      if (engine == TimeEngine::kIncremental) {
        incremental_median = med;
      } else if (incremental_median > 0.0) {
        ratios.push_back(med / incremental_median);
      }
      json.begin_object();
      json.field("suite", b.name);
      json.field("engine", to_string(engine));
      json.field("success", last.success);
      json.field("outcome", to_string(last.outcome));
      json.field("degraded", last.degraded);
      json.field("fault_retries", last.fault_retries);
      json.field("ii", last.success ? last.ii : -1);
      json.field("seconds", med);
      json.field("time_phase_s", last.time_phase_s);
      json.field("space_phase_s", last.space_phase_s);
      json.field("schedules_tried", last.schedules_tried);
      json.field("sat_calls", last.time_stats.sat_calls);
      json.field("instances_built", last.time_stats.instances_built);
      json.field("sessions_created", last.time_stats.sessions_created);
      json.field("horizon_extensions", last.time_stats.horizon_extensions);
      json.field("assumptions_used", last.time_stats.assumptions_used);
      json.field("learnt_retained", last.time_stats.learnt_retained);
      json.field("nogoods_added", last.time_stats.nogoods_added);
      json.field("narrow_nogoods", last.time_stats.narrow_nogoods);
      json.field("nogoods_lifted", last.time_stats.nogoods_lifted);
      json.field("nogoods_deduped", last.time_stats.nogoods_deduped);
      json.field("space_truncated", last.space_truncated);
      json.field("space_exhausted", last.space_exhausted);
      json.field("space_backjumps", last.space_backjumps);
      json.field("budget_extensions", last.budget_extensions);
      json.field("budget_shrinks", last.budget_shrinks);
      json.end_object();
    }
  }
  json.end_array();

  // Space-failure-heavy instances on the smaller paper grids: this is
  // where schedule seeding, retry diversification, conflict-set nogoods
  // and the adaptive space budget are decisive, so the baseline pins them
  // explicitly (nw rides along for its II-3-vs-4 sensitivity to the
  // refutation-patience rule). Grid 8 rides along for the cross-II
  // certificate channel: its mII refutations are where the warm rows
  // harvest certificates. Each case also records the cross-II race on 4
  // workers (clamped to the machine's cores): engine="speculative" is
  // the default cold race, which lands on the incremental rows' final II
  // bit-exactly, and engine="speculative-warm" shares certificates
  // (SpeculativeOptions::share_nogoods — may settle a different II on
  // borderline cases); the certificate-traffic counters ride on the warm
  // rows.
  json.key("hard");
  json.begin_array();
  for (const char* name : {"hotspot3D", "cfd", "nw"}) {
    const Benchmark& b = benchmark_by_name(name);
    for (const int side : {4, 5, 8}) {
      const CgraArch hard_arch = CgraArch::square(side);
      for (const TimeEngine engine :
           {TimeEngine::kIncremental, TimeEngine::kReference}) {
        DecoupledMapperOptions opt;
        opt.timeout_s = 120.0;
        opt.time.engine = engine;
        const DecoupledMapper mapper(opt);
        std::vector<double> seconds;
        MapResult last;
        for (int r = 0; r < repeats; ++r) {
          Stopwatch wall;
          last = mapper.map(b.dfg, hard_arch);
          seconds.push_back(wall.elapsed_s());
        }
        json.begin_object();
        json.field("suite", b.name);
        json.field("grid", side);
        json.field("engine", to_string(engine));
        json.field("success", last.success);
        json.field("outcome", to_string(last.outcome));
        json.field("degraded", last.degraded);
        json.field("fault_retries", last.fault_retries);
        json.field("ii", last.success ? last.ii : -1);
        json.field("seconds", median(seconds));
        json.field("schedules_tried", last.schedules_tried);
        json.field("nogoods_added", last.time_stats.nogoods_added);
        json.field("space_truncated", last.space_truncated);
        json.field("space_exhausted", last.space_exhausted);
        json.field("space_backjumps", last.space_backjumps);
        json.field("budget_extensions", last.budget_extensions);
        json.field("budget_shrinks", last.budget_shrinks);
        json.end_object();
      }
      for (const bool warm : {false, true}) {
        DecoupledMapperOptions opt;
        opt.timeout_s = 120.0;
        const DecoupledMapper mapper(opt);
        SpeculativeOptions sopt;
        sopt.num_threads = 4;
        sopt.share_nogoods = warm;
        std::vector<double> seconds;
        MapResult last;
        for (int r = 0; r < repeats; ++r) {
          Stopwatch wall;
          last = mapper.map_speculative(b.dfg, hard_arch, sopt);
          seconds.push_back(wall.elapsed_s());
        }
        json.begin_object();
        json.field("suite", b.name);
        json.field("grid", side);
        json.field("engine", warm ? "speculative-warm" : "speculative");
        json.field("success", last.success);
        json.field("outcome", to_string(last.outcome));
        json.field("degraded", last.degraded);
        json.field("fault_retries", last.fault_retries);
        json.field("ii", last.success ? last.ii : -1);
        json.field("seconds", median(seconds));
        json.field("schedules_tried", last.schedules_tried);
        json.field("nogoods_added", last.time_stats.nogoods_added);
        if (warm) {
          json.field("speculative_hits", last.speculative_hits);
          json.field("nogoods_lifted_cross_ii",
                     last.nogoods_lifted_cross_ii);
          json.field("steals", last.steals);
        }
        json.field("space_truncated", last.space_truncated);
        json.field("space_exhausted", last.space_exhausted);
        json.field("space_backjumps", last.space_backjumps);
        json.field("budget_extensions", last.budget_extensions);
        json.field("budget_shrinks", last.budget_shrinks);
        json.end_object();
      }
    }
  }
  json.end_array();

  json.key("summary");
  json.begin_object();
  json.field("median_speedup_reference_over_incremental", median(ratios));
  json.end_object();
  json.end_object();
  std::cout << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  int grid = 8;
  int repeats = 5;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json = true;
    if (std::strcmp(argv[i], "--grid") == 0 && i + 1 < argc) {
      grid = std::atoi(argv[i + 1]);
    }
    if (std::strcmp(argv[i], "--repeats") == 0 && i + 1 < argc) {
      repeats = std::atoi(argv[i + 1]);
    }
  }
  if (json) {
    run_json_mode(std::max(grid, 1), std::max(repeats, 1));
    return 0;
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
