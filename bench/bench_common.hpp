// Shared helpers for the table/figure bench harnesses.
#ifndef MONOMAP_BENCH_BENCH_COMMON_HPP
#define MONOMAP_BENCH_BENCH_COMMON_HPP

#include <cstdlib>
#include <string>
#include <vector>

namespace monomap::bench {

/// Per-solve timeout in seconds. The paper used 4000 s on a 256 GB server;
/// the harness defaults to a laptop-friendly budget and honours
/// MONOMAP_TIMEOUT_S for full-fidelity reruns.
inline double timeout_s(double fallback = 6.0) {
  if (const char* env = std::getenv("MONOMAP_TIMEOUT_S")) {
    const double v = std::atof(env);
    if (v > 0) return v;
  }
  return fallback;
}

/// Parse "2,5,10" style grid lists.
inline std::vector<int> parse_grids(const std::string& arg) {
  std::vector<int> grids;
  std::size_t pos = 0;
  while (pos < arg.size()) {
    const std::size_t comma = arg.find(',', pos);
    const std::string tok = arg.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    if (!tok.empty()) grids.push_back(std::atoi(tok.c_str()));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return grids;
}

}  // namespace monomap::bench

#endif  // MONOMAP_BENCH_BENCH_COMMON_HPP
