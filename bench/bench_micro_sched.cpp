// Micro-benchmark A6: scheduling front end and time-formulation encoding
// costs (google-benchmark) — the grid-size-independent part of the
// decoupled flow.
#include <benchmark/benchmark.h>

#include "sched/kms.hpp"
#include "sched/mii.hpp"
#include "sched/mobility.hpp"
#include "timing/time_formulation.hpp"
#include "workloads/suite.hpp"

namespace {

using namespace monomap;

void BM_AsapAlapSuite(benchmark::State& state) {
  for (auto _ : state) {
    for (const Benchmark& b : benchmark_suite()) {
      const MobilitySchedule mobs(b.dfg);
      benchmark::DoNotOptimize(mobs.length());
    }
  }
}
BENCHMARK(BM_AsapAlapSuite);

void BM_RecurrenceMiiSuite(benchmark::State& state) {
  for (auto _ : state) {
    for (const Benchmark& b : benchmark_suite()) {
      benchmark::DoNotOptimize(recurrence_mii_of(b.dfg));
    }
  }
}
BENCHMARK(BM_RecurrenceMiiSuite);

void BM_KmsFolding(benchmark::State& state) {
  const Benchmark& b = benchmark_by_name("hotspot3D");
  const MobilitySchedule mobs(b.dfg, 0);
  for (auto _ : state) {
    const Kms kms(mobs, static_cast<int>(state.range(0)));
    benchmark::DoNotOptimize(kms.interleaved_iterations());
  }
}
BENCHMARK(BM_KmsFolding)->Arg(2)->Arg(4)->Arg(8);

void BM_TimeFormulationBuild(benchmark::State& state) {
  // Encoding construction for the named benchmark at its mII on 5x5 — and,
  // crucially, identical for any larger grid (grid-size independence).
  const Benchmark& b =
      benchmark_suite()[static_cast<std::size_t>(state.range(0))];
  const CgraArch arch = CgraArch::square(5);
  const int ii = compute_mii(b.dfg, arch).mii();
  for (auto _ : state) {
    TimeFormulation f(b.dfg, arch, ii);
    const bool ok = f.build();
    benchmark::DoNotOptimize(ok);
  }
  state.SetLabel(b.name);
}
BENCHMARK(BM_TimeFormulationBuild)->Arg(0)->Arg(4)->Arg(9)->Arg(12);

void BM_TimeSolveAtMii(benchmark::State& state) {
  const Benchmark& b =
      benchmark_suite()[static_cast<std::size_t>(state.range(0))];
  const CgraArch arch = CgraArch::square(5);
  const int ii = compute_mii(b.dfg, arch).mii();
  for (auto _ : state) {
    TimeFormulation f(b.dfg, arch, ii);
    if (f.build()) {
      benchmark::DoNotOptimize(f.solve(Deadline(30.0)));
    }
  }
  state.SetLabel(b.name);
}
BENCHMARK(BM_TimeSolveAtMii)->Arg(0)->Arg(6)->Arg(9);

}  // namespace

BENCHMARK_MAIN();
