// Ablation A3: monomorphism-search heuristics.
//
// Compares variable orderings (connectivity / degree / BFS), the forward
// check and symmetry breaking on schedules produced by the time solver for
// the full suite, reporting search effort (backtracks) and time.
//
// Usage: bench_ablation_space [grid_side] (default 5)
#include <iostream>
#include <string>

#include "bench_common.hpp"
#include "space/monomorphism.hpp"
#include "support/table.hpp"
#include "timing/time_solver.hpp"
#include "workloads/suite.hpp"

int main(int argc, char** argv) {
  using namespace monomap;
  using namespace monomap::bench;

  const int side = argc > 1 ? std::atoi(argv[1]) : 5;
  const CgraArch arch = CgraArch::square(side);
  std::cout << "Ablation A3 — space-search heuristics on "
            << arch.description() << "\n\n";

  struct Config {
    std::string name;
    SpaceOptions options;
  };
  std::vector<Config> configs;
  for (const SpaceOrder order :
       {SpaceOrder::kDynamicMrv, SpaceOrder::kConnectivity,
        SpaceOrder::kDegree, SpaceOrder::kBfs}) {
    Config c;
    c.name = to_string(order);
    c.options.order = order;
    configs.push_back(c);
  }
  {
    // The forward-check toggle only exists in the reference engine (the
    // bitset engine's propagation subsumes it), so both rows of that
    // comparison pin the engine.
    Config ref;
    ref.name = "connectivity/reference";
    ref.options.engine = SpaceEngine::kReference;
    ref.options.order = SpaceOrder::kConnectivity;
    configs.push_back(ref);
    Config c;
    c.name = "connectivity/ref-no-fwd";
    c.options.engine = SpaceEngine::kReference;
    c.options.order = SpaceOrder::kConnectivity;
    c.options.forward_check = false;
    configs.push_back(c);
    Config d;
    d.name = "mrv/no-sym";
    d.options.symmetry_breaking = false;
    configs.push_back(d);
    Config e;
    e.name = "mrv/reference";
    e.options.engine = SpaceEngine::kReference;
    configs.push_back(e);
  }

  // Collect one schedule per benchmark (shared across configs for fairness).
  struct Instance {
    const Benchmark* bench;
    std::vector<int> labels;
    int ii;
  };
  std::vector<Instance> instances;
  for (const Benchmark& b : benchmark_suite()) {
    TimeSolver solver(b.dfg, arch);
    const auto sol = solver.next(Deadline(timeout_s()));
    if (!sol.has_value()) continue;
    Instance inst;
    inst.bench = &b;
    inst.ii = sol->ii;
    for (NodeId v = 0; v < b.dfg.num_nodes(); ++v) {
      inst.labels.push_back(sol->label(v));
    }
    instances.push_back(std::move(inst));
  }
  std::cout << instances.size() << " schedules collected\n\n";

  AsciiTable table({"Config", "Found", "Total backtracks", "Total nodes",
                    "Total time[ms]"});
  for (const Config& cfg : configs) {
    int found = 0;
    std::uint64_t backtracks = 0;
    std::uint64_t nodes = 0;
    double ms = 0.0;
    for (const Instance& inst : instances) {
      const SpaceResult r = find_monomorphism(
          inst.bench->dfg, arch, inst.labels, inst.ii, cfg.options,
          Deadline(timeout_s()));
      if (r.found) ++found;
      backtracks += r.backtracks;
      nodes += r.nodes_expanded;
      ms += r.seconds * 1e3;
    }
    table.add_row({cfg.name,
                   std::to_string(found) + "/" +
                       std::to_string(instances.size()),
                   std::to_string(backtracks), std::to_string(nodes),
                   format_fixed(ms, 2)});
  }
  table.print(std::cout);
  return 0;
}
