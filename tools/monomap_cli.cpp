// monomap — command-line driver for the mapping toolchain.
//
//   monomap list
//       List the built-in benchmark suite with structural stats.
//   monomap show <bench|file.dfg>
//       Print DFG stats, ASAP/ALAP/MobS table and DOT.
//   monomap map <bench|file.dfg> [--grid N] [--topology mesh|torus|diagonal]
//               [--timeout S] [--mapper decoupled|speculative|coupled|anneal]
//               [--restricted] [--out mapping.txt]
//       Compile a DFG and print (or save) the mapping.
//   monomap check <bench|file.dfg> <mapping.txt> [--grid N] [...]
//       Validate a saved mapping against a DFG and architecture.
#include <algorithm>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "graph/dot.hpp"
#include "io/dfg_io.hpp"
#include "mapper/annealing_mapper.hpp"
#include "mapper/coupled_mapper.hpp"
#include "mapper/decoupled_mapper.hpp"
#include "mapper/reg_pressure.hpp"
#include "sched/mobility.hpp"
#include "support/argparse.hpp"
#include "support/fault.hpp"
#include "support/outcome.hpp"
#include "support/table.hpp"
#include "workloads/suite.hpp"

namespace {

using namespace monomap;

struct CliOptions {
  int grid = 4;
  Topology topology = Topology::kMesh;
  double timeout_s = 30.0;
  std::string mapper = "decoupled";
  TimeEngine time_engine = TimeEngine::kIncremental;
  bool restricted = false;
  int threads = 0;   // portfolio/speculative mappers: 0 = auto
  int lookahead = 2;  // speculative mapper: IIs raced beyond the frontier
  bool share_nogoods = false;  // speculative: cross-II cert warm start
  std::uint64_t space_budget = 0;    // valid only when space_budget_set
  bool space_budget_set = false;     // --space-budget given (0 = unlimited)
  std::uint64_t shrink_divisor = 0;  // 0 = keep the mapper default
  bool adaptive_budget = true;
  bool distance2 = true;
  bool backjump = true;
  bool anytime = false;         // degrade to the best feasible mapping
  std::string space_order = "auto";  // auto|dynamic-mrv|sparse-mrv|static
  int max_schedules = 0;        // deterministic work budget (0 = off)
  std::uint64_t mem_budget_mb = 0;  // governor budget (0 = unlimited)
  std::string faults;           // fault-injection spec (empty = off)
  std::string out;
};

[[noreturn]] void usage() {
  std::cerr <<
      "usage: monomap <command> [args]\n"
      "  list\n"
      "  show <bench|file.dfg>\n"
      "  map <bench|file.dfg> [--grid N] [--topology mesh|torus|diagonal]\n"
      "      [--timeout S]\n"
      "      [--mapper decoupled|speculative|portfolio|coupled|anneal]\n"
      "      [--time-engine incremental|reference] [--threads N]\n"
      "      [--lookahead N] [--share-nogoods]\n"
      "      [--space-budget N] [--shrink-divisor N] [--no-adaptive-budget]\n"
      "      [--no-distance2] [--no-backjump] [--restricted] [--out FILE]\n"
      "      [--space-order dynamic-mrv|sparse-mrv|static]\n"
      "      [--anytime] [--max-schedules N] [--mem-budget-mb N]\n"
      "      [--faults SPEC]   (SPEC: site=kind@period[,...][:seed],\n"
      "                         see docs/robustness.md)\n"
      "  batch <bench|file.dfg>... [--grid N] [--topology T] [--timeout S]\n"
      "      [--threads N] [--max-schedules N] [--anytime] [--faults SPEC]\n"
      "      (shared deadline; prints per-case results and the batch\n"
      "       outcome_counts histogram)\n"
      "  check <bench|file.dfg> <mapping.txt> [--grid N] [--topology T]\n"
      "exit codes (map): 0 feasible, 3 degraded, 4 refuted, 5 deadline,\n"
      "                  6 memory, 7 fault, 8 cancelled\n";
  std::exit(2);
}

Dfg load_dfg(const std::string& spec) {
  if (spec.size() > 4 && spec.substr(spec.size() - 4) == ".dfg") {
    std::ifstream in(spec);
    if (!in) {
      std::cerr << "cannot open " << spec << '\n';
      std::exit(1);
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return dfg_from_text(buffer.str());
  }
  return benchmark_by_name(spec).dfg;
}

// Strict flag-value parsers: trailing junk, empty strings and overflow are
// usage errors (exit 2 with a message naming the flag), never a silent
// atoi-zero that maps the wrong problem.
std::uint64_t parse_u64(const std::string& s, const char* flag) {
  std::uint64_t v = 0;
  if (!argparse::parse_u64(s, &v)) {
    std::cerr << flag << ": expected a non-negative integer, got '" << s
              << "'\n";
    usage();
  }
  return v;
}

int parse_pos_int(const std::string& s, const char* flag, int min_value) {
  int v = 0;
  if (!argparse::parse_int(s, &v) || v < min_value) {
    std::cerr << flag << ": expected an integer >= " << min_value
              << ", got '" << s << "'\n";
    usage();
  }
  return v;
}

double parse_pos_double(const std::string& s, const char* flag) {
  double v = 0.0;
  if (!argparse::parse_double(s, &v) || v <= 0.0) {
    std::cerr << flag << ": expected a positive number, got '" << s << "'\n";
    usage();
  }
  return v;
}

CliOptions parse_flags(int argc, char** argv, int first) {
  CliOptions opt;
  for (int i = first; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage();
      return argv[++i];
    };
    if (arg == "--grid") {
      opt.grid = parse_pos_int(value(), "--grid", 1);
    } else if (arg == "--topology") {
      const std::string t = value();
      if (t == "mesh") opt.topology = Topology::kMesh;
      else if (t == "torus") opt.topology = Topology::kTorus;
      else if (t == "diagonal") opt.topology = Topology::kDiagonal;
      else usage();
    } else if (arg == "--timeout") {
      opt.timeout_s = parse_pos_double(value(), "--timeout");
    } else if (arg == "--mapper") {
      opt.mapper = value();
    } else if (arg == "--time-engine") {
      const std::string e = value();
      if (e == "incremental") opt.time_engine = TimeEngine::kIncremental;
      else if (e == "reference") opt.time_engine = TimeEngine::kReference;
      else usage();
    } else if (arg == "--threads") {
      opt.threads = parse_pos_int(value(), "--threads", 0);
    } else if (arg == "--lookahead") {
      opt.lookahead = parse_pos_int(value(), "--lookahead", 1);
    } else if (arg == "--share-nogoods") {
      opt.share_nogoods = true;
    } else if (arg == "--space-budget") {
      opt.space_budget = parse_u64(value(), "--space-budget");
      opt.space_budget_set = true;
    } else if (arg == "--shrink-divisor") {
      opt.shrink_divisor = parse_u64(value(), "--shrink-divisor");
    } else if (arg == "--no-adaptive-budget") {
      opt.adaptive_budget = false;
    } else if (arg == "--no-distance2") {
      opt.distance2 = false;
    } else if (arg == "--no-backjump") {
      opt.backjump = false;
    } else if (arg == "--anytime") {
      opt.anytime = true;
    } else if (arg == "--space-order") {
      const std::string o = value();
      if (o == "dynamic-mrv" || o == "sparse-mrv" || o == "static") {
        opt.space_order = o;
      } else {
        std::cerr << "--space-order: expected dynamic-mrv, sparse-mrv or "
                     "static, got '" << o << "'\n";
        usage();
      }
    } else if (arg == "--max-schedules") {
      opt.max_schedules = parse_pos_int(value(), "--max-schedules", 0);
    } else if (arg == "--mem-budget-mb") {
      opt.mem_budget_mb = parse_u64(value(), "--mem-budget-mb");
    } else if (arg == "--faults") {
      opt.faults = value();
    } else if (arg == "--restricted") {
      opt.restricted = true;
    } else if (arg == "--out") {
      opt.out = value();
    } else {
      usage();
    }
  }
  if (opt.grid < 1) usage();
  return opt;
}

int cmd_list() {
  AsciiTable table({"Benchmark", "Nodes", "Edges", "RecII", "MaxDeg",
                    "Paper II (2/5/10/20)"});
  for (const Benchmark& b : benchmark_suite()) {
    std::ostringstream ii;
    for (std::size_t g = 0; g < b.paper_ii.size(); ++g) {
      if (g != 0) ii << '/';
      if (b.paper_ii[g] < 0) ii << "TO";
      else ii << b.paper_ii[g];
    }
    table.add_row({b.name, std::to_string(b.dfg.num_nodes()),
                   std::to_string(b.dfg.num_edges()),
                   std::to_string(b.paper_rec_ii),
                   std::to_string(b.dfg.max_undirected_degree()), ii.str()});
  }
  table.print(std::cout);
  return 0;
}

int cmd_show(const std::string& spec) {
  const Dfg dfg = load_dfg(spec);
  std::cout << "DFG '" << dfg.name() << "': " << dfg.num_nodes()
            << " nodes, " << dfg.num_edges() << " edges, max degree "
            << dfg.max_undirected_degree() << "\n\n";
  const MobilitySchedule mobs(dfg);
  std::cout << mobs.to_table() << '\n'
            << to_dot(dfg.graph(), dfg.name());
  return 0;
}

int cmd_map(const std::string& spec, const CliOptions& opt) {
  if (!opt.faults.empty()) {
    std::string error;
    const auto plan = fault::parse_fault_spec(opt.faults, &error);
    if (!plan.has_value()) {
      std::cerr << "--faults: " << error << '\n';
      return 2;
    }
    fault::install_faults(*plan);
  }
  const Dfg dfg = load_dfg(spec);
  const CgraArch arch(opt.grid, opt.grid, opt.topology);
  std::cout << "mapping '" << dfg.name() << "' onto " << arch.description()
            << " with " << opt.mapper << " mapper\n";

  std::optional<Mapping> mapping;
  int ii = 0;
  double seconds = 0.0;
  // Outcome-taxonomy exit code (decoupled-family mappers); the legacy
  // coupled/anneal paths keep the historical 0/1.
  std::optional<int> exit_override;
  if (opt.mapper == "decoupled" || opt.mapper == "portfolio" ||
      opt.mapper == "speculative") {
    DecoupledMapperOptions mopt;
    mopt.timeout_s = opt.timeout_s;
    mopt.time.engine = opt.time_engine;
    mopt.adaptive_space_budget = opt.adaptive_budget;
    mopt.space.distance2_filter = opt.distance2;
    mopt.space.backjumping = opt.backjump;
    // "auto" leaves the engine defaults (dynamic MRV with the size-based
    // sparse upgrade); an explicit dynamic-mrv pins the classic ordering by
    // clearing the auto-upgrade, so A/B runs compare exactly what they name.
    if (opt.space_order == "dynamic-mrv") {
      mopt.space.order = SpaceOrder::kDynamicMrv;
      mopt.space.sparse_order_auto = false;
    } else if (opt.space_order == "sparse-mrv") {
      mopt.space.order = SpaceOrder::kSparseMrv;
    } else if (opt.space_order == "static") {
      mopt.space.order = SpaceOrder::kConnectivity;
    }
    mopt.anytime = opt.anytime;
    mopt.max_schedules = opt.max_schedules;
    mopt.memory_budget_mb = opt.mem_budget_mb;
    if (opt.space_budget_set) {
      mopt.space.max_backtracks = opt.space_budget;  // 0 = unlimited
    }
    if (opt.shrink_divisor != 0) {
      mopt.space_budget_shrink_divisor = opt.shrink_divisor;
    }
    if (opt.restricted) {
      mopt.space.model = MrrgModel::kConsecutiveOnly;
    }
    const DecoupledMapper mapper(mopt);
    MapResult r;
    if (opt.mapper == "portfolio") {
      PortfolioOptions popt;
      popt.num_threads = opt.threads;
      r = mapper.map_portfolio(dfg, arch, popt);
      if (r.success) {
        std::cout << "portfolio winner: config #" << r.portfolio_config
                  << '\n';
      }
    } else if (opt.mapper == "speculative") {
      SpeculativeOptions sopt;
      sopt.num_threads = opt.threads;
      sopt.lookahead = opt.lookahead;
      sopt.share_nogoods = opt.share_nogoods;
      r = mapper.map_speculative(dfg, arch, sopt);
      std::cout << "speculative: " << r.speculative_hits
                << " prefilter hits, " << r.nogoods_lifted_cross_ii
                << " cross-II nogoods lifted, " << r.steals << " steals\n";
    } else {
      r = mapper.map(dfg, arch);
    }
    if (r.success) {
      mapping = r.mapping;
      ii = r.ii;
    } else {
      std::cerr << "failed: " << r.failure_reason << '\n';
    }
    std::cout << "space: " << r.schedules_tried << " schedules, "
              << r.space_truncated << " truncated, " << r.space_exhausted
              << " refuted, " << r.space_backjumps << " backjumps, budget +"
              << r.budget_extensions << "/-" << r.budget_shrinks
              << " (time " << format_time_s(r.time_phase_s) << " s, space "
              << format_time_s(r.space_phase_s) << " s)\n";
    std::cout << "outcome: " << to_string(r.outcome) << ", sound II interval ["
              << r.ii_lo << ", "
              << (r.ii_hi > 0 ? std::to_string(r.ii_hi) : std::string("inf"))
              << "]";
    if (r.fault_retries > 0) {
      std::cout << ", " << r.fault_retries << " fault retries";
    }
    if (r.mem_peak_bytes > 0) {
      std::cout << ", mem peak " << (r.mem_peak_bytes >> 10) << " KiB, "
                << r.mem_sheds << " sheds";
    }
    std::cout << '\n';
    if (!r.causes.empty()) {
      std::cout << "causes: " << format_causes(r.causes) << '\n';
    }
    exit_override = exit_code(r.outcome);
    seconds = r.total_s;
  } else if (opt.mapper == "coupled") {
    CoupledMapperOptions mopt;
    mopt.timeout_s = opt.timeout_s;
    const CoupledMapResult r = CoupledSatMapper(mopt).map(dfg, arch);
    if (r.success) {
      mapping = r.mapping;
      ii = r.ii;
    } else {
      std::cerr << "failed: " << r.failure_reason << '\n';
    }
    seconds = r.total_s;
  } else if (opt.mapper == "anneal") {
    AnnealingOptions mopt;
    mopt.timeout_s = opt.timeout_s;
    const AnnealResult r = AnnealingMapper(mopt).map(dfg, arch);
    if (r.success) {
      mapping = r.mapping;
      ii = r.ii;
    } else {
      std::cerr << "failed: " << r.failure_reason << '\n';
    }
    seconds = r.total_s;
  } else {
    usage();
  }
  if (!mapping.has_value()) return exit_override.value_or(1);

  std::cout << "II=" << ii << " in " << format_time_s(seconds) << " s\n"
            << mapping_to_string(dfg, arch, *mapping)
            << analyze_register_pressure(dfg, arch, *mapping).to_string()
            << '\n';
  if (!opt.out.empty()) {
    std::ofstream out(opt.out);
    out << mapping_to_text(dfg, *mapping);
    std::cout << "mapping written to " << opt.out << '\n';
  }
  return exit_override.value_or(0);
}

int cmd_batch(const std::vector<std::string>& specs, const CliOptions& opt) {
  if (!opt.faults.empty()) {
    std::string error;
    const auto plan = fault::parse_fault_spec(opt.faults, &error);
    if (!plan.has_value()) {
      std::cerr << "--faults: " << error << '\n';
      return 2;
    }
    fault::install_faults(*plan);
  }
  std::vector<Dfg> dfgs;
  dfgs.reserve(specs.size());
  for (const std::string& spec : specs) {
    dfgs.push_back(load_dfg(spec));
  }
  std::vector<const Dfg*> ptrs;
  ptrs.reserve(dfgs.size());
  for (const Dfg& dfg : dfgs) ptrs.push_back(&dfg);
  const CgraArch arch(opt.grid, opt.grid, opt.topology);

  DecoupledMapperOptions mopt;
  mopt.time.engine = opt.time_engine;
  mopt.anytime = opt.anytime;
  mopt.max_schedules = opt.max_schedules;
  mopt.memory_budget_mb = opt.mem_budget_mb;
  if (opt.restricted) mopt.space.model = MrrgModel::kConsecutiveOnly;
  const DecoupledMapper mapper(mopt);

  BatchStats stats;
  const Deadline deadline(opt.timeout_s);
  const std::vector<MapResult> results =
      mapper.map_batch(ptrs, arch, deadline, opt.threads, &stats);

  AsciiTable table({"Case", "Outcome", "II", "Schedules", "Time (s)"});
  int worst = 0;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const MapResult& r = results[i];
    table.add_row({specs[i], to_string(r.outcome),
                   r.success ? std::to_string(r.ii) : "-",
                   std::to_string(r.schedules_tried),
                   format_time_s(r.total_s)});
    worst = std::max(worst, exit_code(r.outcome));
  }
  table.print(std::cout);
  // The per-batch outcome histogram: every class printed (zeros included)
  // so scripted callers can grep a stable line.
  std::cout << "outcome_counts:";
  for (int o = 0; o < kMapOutcomeCount; ++o) {
    std::cout << ' ' << to_string(static_cast<MapOutcome>(o)) << '='
              << stats.outcome_counts[static_cast<std::size_t>(o)];
  }
  std::cout << "\npool: " << stats.steals << " steals, "
            << stats.fault_requeues << " fault requeues\n";
  return worst;
}

int cmd_check(const std::string& spec, const std::string& mapping_file,
              const CliOptions& opt) {
  const Dfg dfg = load_dfg(spec);
  const CgraArch arch(opt.grid, opt.grid, opt.topology);
  std::ifstream in(mapping_file);
  if (!in) {
    std::cerr << "cannot open " << mapping_file << '\n';
    return 1;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const Mapping mapping =
      mapping_from_text(buffer.str(), dfg.num_nodes());
  const auto violations = validate_mapping(
      dfg, arch, mapping,
      opt.restricted ? MrrgModel::kConsecutiveOnly
                     : MrrgModel::kRegisterPersistence);
  if (violations.empty()) {
    std::cout << "mapping is valid (II=" << mapping.ii() << ")\n";
    return 0;
  }
  for (const auto& v : violations) {
    std::cerr << "violation: " << v.what << '\n';
  }
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "list") return cmd_list();
    if (cmd == "show" && argc >= 3) return cmd_show(argv[2]);
    if (cmd == "map" && argc >= 3) {
      return cmd_map(argv[2], parse_flags(argc, argv, 3));
    }
    if (cmd == "batch" && argc >= 3) {
      std::vector<std::string> specs;
      int i = 2;
      while (i < argc && std::string(argv[i]).rfind("--", 0) != 0) {
        specs.emplace_back(argv[i]);
        ++i;
      }
      if (specs.empty()) usage();
      return cmd_batch(specs, parse_flags(argc, argv, i));
    }
    if (cmd == "check" && argc >= 4) {
      return cmd_check(argv[2], argv[3], parse_flags(argc, argv, 4));
    }
  } catch (const monomap::AssertionError& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  usage();
}
