// monomap_serve — mapping-as-a-service daemon.
//
// Serves the newline-delimited JSON protocol (src/service/protocol.hpp)
// over a Unix-domain socket, a loopback TCP socket, or stdin/stdout:
//
//   monomap_serve --unix /tmp/monomap.sock [flags]
//   monomap_serve --port 7421 [flags]
//   monomap_serve --stdio [flags]            (one client; tests, pipes)
//
// One MappingService instance backs every connection, so all clients share
// the fingerprint memo cache and the certificate knowledge store. A
// `shutdown` verb (or SIGINT/SIGTERM) drains in-flight requests and exits 0.
#include <atomic>
#include <csignal>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "service/service.hpp"
#include "support/argparse.hpp"
#include "support/fault.hpp"

namespace {

using namespace monomap;

std::atomic<bool> g_stop{false};

void on_signal(int) { g_stop.store(true, std::memory_order_release); }

[[noreturn]] void usage() {
  std::cerr <<
      "usage: monomap_serve (--unix PATH | --port N | --stdio)\n"
      "  [--threads N]          mapper worker threads (default 1)\n"
      "  [--queue-limit N]      admission bound, 0 = unbounded (default 16)\n"
      "  [--deadline S]         default per-request deadline (default 30)\n"
      "  [--no-memo]            disable the fingerprint memo cache\n"
      "  [--no-warm]            disable certificate/floor warm starts\n"
      "  [--store-budget-mb N]  knowledge-store byte budget (default 64)\n"
      "  [--max-memo-entries N] memo LRU capacity (default 4096)\n"
      "  [--faults SPEC]        arm fault injection (docs/robustness.md)\n"
      "protocol: one JSON request per line, one JSON response per line\n"
      "          (docs/serving.md); verbs map / stats / shutdown\n";
  std::exit(2);
}

/// Read up to '\n'-delimited lines from fd, answer each through the
/// service. Returns when the peer hangs up or shutdown is requested.
void serve_connection(MappingService* service, int fd) {
  std::string buffer;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n <= 0) break;
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t start = 0;
    for (;;) {
      const std::size_t nl = buffer.find('\n', start);
      if (nl == std::string::npos) break;
      std::string line = buffer.substr(start, nl - start);
      start = nl + 1;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      std::string response = service->handle_line(line);
      response.push_back('\n');
      std::size_t off = 0;
      while (off < response.size()) {
        const ssize_t w =
            ::write(fd, response.data() + off, response.size() - off);
        if (w <= 0) {
          ::close(fd);
          return;
        }
        off += static_cast<std::size_t>(w);
      }
      if (service->shutdown_requested()) {
        ::close(fd);
        return;
      }
    }
    buffer.erase(0, start);
  }
  ::close(fd);
}

int serve_stdio(MappingService* service) {
  std::string line;
  while (!service->shutdown_requested() &&
         !g_stop.load(std::memory_order_acquire) &&
         std::getline(std::cin, line)) {
    if (line.empty()) continue;
    std::cout << service->handle_line(line) << '\n' << std::flush;
  }
  return 0;
}

int serve_socket(MappingService* service, int listen_fd,
                 const std::string& unix_path) {
  std::vector<std::thread> connections;
  while (!service->shutdown_requested() &&
         !g_stop.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 200);
    if (ready < 0 && errno != EINTR) break;
    if (ready <= 0 || (pfd.revents & POLLIN) == 0) continue;
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) continue;
    connections.emplace_back(serve_connection, service, fd);
  }
  ::close(listen_fd);
  for (std::thread& t : connections) t.join();
  if (!unix_path.empty()) ::unlink(unix_path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string unix_path;
  int port = -1;
  bool stdio = false;
  std::string faults;
  MappingService::Options options;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage();
      return argv[++i];
    };
    // Every numeric flag goes through the strict parsers: trailing junk,
    // empty strings and overflow are usage errors (exit 2), never a
    // silently-zero atoi.
    if (arg == "--unix") {
      unix_path = value();
    } else if (arg == "--port") {
      if (!argparse::parse_int(value(), &port) || port < 1 || port > 65535) {
        usage();
      }
    } else if (arg == "--stdio") {
      stdio = true;
    } else if (arg == "--threads") {
      if (!argparse::parse_int(value(), &options.threads) ||
          options.threads < 1) {
        usage();
      }
    } else if (arg == "--queue-limit") {
      if (!argparse::parse_int(value(), &options.queue_limit) ||
          options.queue_limit < 0) {
        usage();
      }
    } else if (arg == "--deadline") {
      if (!argparse::parse_double(value(), &options.default_deadline_s) ||
          options.default_deadline_s <= 0.0) {
        usage();
      }
    } else if (arg == "--no-memo") {
      options.memo = false;
    } else if (arg == "--no-warm") {
      options.warm = false;
    } else if (arg == "--store-budget-mb") {
      std::uint64_t mb = 0;
      if (!argparse::parse_u64(value(), &mb)) usage();
      options.store_budget_mb = static_cast<std::size_t>(mb);
    } else if (arg == "--max-memo-entries") {
      std::uint64_t n = 0;
      if (!argparse::parse_u64(value(), &n)) usage();
      options.max_memo_entries = static_cast<std::size_t>(n);
    } else if (arg == "--faults") {
      faults = value();
    } else {
      usage();
    }
  }
  const int modes =
      (unix_path.empty() ? 0 : 1) + (port > 0 ? 1 : 0) + (stdio ? 1 : 0);
  if (modes != 1) usage();

  if (!faults.empty()) {
    std::string error;
    const auto plan = fault::parse_fault_spec(faults, &error);
    if (!plan.has_value()) {
      std::cerr << "--faults: " << error << '\n';
      return 2;
    }
    fault::install_faults(*plan);
  }

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  std::signal(SIGPIPE, SIG_IGN);

  MappingService service(options);
  if (stdio) {
    return serve_stdio(&service);
  }

  int listen_fd = -1;
  if (!unix_path.empty()) {
    sockaddr_un addr{};
    if (unix_path.size() >= sizeof(addr.sun_path)) {
      std::cerr << "--unix: path too long\n";
      return 2;
    }
    listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd < 0) {
      std::cerr << "socket: " << std::strerror(errno) << '\n';
      return 1;
    }
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, unix_path.c_str(), sizeof(addr.sun_path) - 1);
    ::unlink(unix_path.c_str());
    if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      std::cerr << "bind " << unix_path << ": " << std::strerror(errno)
                << '\n';
      return 1;
    }
  } else {
    listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd < 0) {
      std::cerr << "socket: " << std::strerror(errno) << '\n';
      return 1;
    }
    const int one = 1;
    ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      std::cerr << "bind 127.0.0.1:" << port << ": " << std::strerror(errno)
                << '\n';
      return 1;
    }
  }
  if (::listen(listen_fd, 64) != 0) {
    std::cerr << "listen: " << std::strerror(errno) << '\n';
    ::close(listen_fd);
    return 1;
  }
  std::cerr << "monomap_serve: listening on "
            << (unix_path.empty() ? ("127.0.0.1:" + std::to_string(port))
                                  : unix_path)
            << " (" << options.threads << " worker thread"
            << (options.threads == 1 ? "" : "s") << ")\n";
  return serve_socket(&service, listen_fd, unix_path);
}
