#!/usr/bin/env python3
"""Compare a fresh bench_micro_space/bench_micro_time --json run against a
checked-in baseline and fail on regression.

Usage:
    bench_diff.py FRESH.json BASELINE.json [--max-ratio 2.0]
                  [--metric seconds] [--key space]

Rows are paired on (suite, grid, engine) inside the record array named by
--key ("space" for BENCH_space.json, "time" or "hard" for
BENCH_time.json; "hard" rows carry a per-row grid, the others inherit the
document's). The check fails (exit 1) when the MEDIAN of the per-row
fresh/baseline ratios for --metric exceeds --max-ratio. The deterministic
effort counters (nodes_expanded for space records, sat_calls and
schedules_tried for time records) are checked with the same threshold when
present — they catch search-behaviour regressions independently of machine
speed.

The speculative-race telemetry counters get a non-vanishing gate instead
of a ratio (their magnitudes are scheduling-dependent): once a baseline
recorded nogoods_lifted_cross_ii as active (sum > 0 over the paired rows)
a fresh run summing to exactly 0 fails — certificate lifting follows
deterministically from lower-II refutations, so its disappearance means
the channel's wiring went dead. speculative_hits and steals vanishing is
only *noted*: both legitimately go to zero on a machine with fewer cores
(no overlap, no steals). Rows or whole baselines predating a counter are
tolerated (the counter is simply absent there).

Row-set drift: a baseline row missing from the fresh run fails the gate
(exit 1) when the fresh run covers that row's grid section — a case
silently stopped being benchmarked. Baseline grid sections the fresh run
does not produce at all are noted and skipped (a single-grid CI gate
against a multi-grid baseline), as are fresh rows with no baseline yet
(the first recording of a new section).
"""

import argparse
import json
import sys


def load_rows(path, key):
    with open(path) as fh:
        doc = json.load(fh)
    if key not in doc:
        sys.exit(f"error: {path} has no '{key}' record array "
                 f"(keys: {sorted(doc)})")
    rows = {}
    for row in doc[key]:
        # The "hard" section sweeps grids per suite, so the grid is part of
        # the row identity; other sections inherit the document grid.
        grid = row.get("grid", doc.get("grid", "-"))
        rows[(row["suite"], grid, row.get("engine", "-"))] = row
    return rows


def median(xs):
    xs = sorted(xs)
    if not xs:
        return None
    mid = len(xs) // 2
    return xs[mid] if len(xs) % 2 == 1 else 0.5 * (xs[mid - 1] + xs[mid])


def check_metric(fresh, base, metric, max_ratio):
    """Return (median_ratio, worst_label, worst_ratio, compared) or None if
    the metric is absent from the paired rows."""
    ratios = []
    worst = (None, 0.0)
    for label, fresh_row in fresh.items():
        base_row = base.get(label)
        if base_row is None or metric not in fresh_row or metric not in base_row:
            continue
        f, b = float(fresh_row[metric]), float(base_row[metric])
        if b <= 0.0:
            continue  # sub-resolution baseline: a ratio would be noise
        ratio = f / b
        ratios.append(ratio)
        if ratio > worst[1]:
            worst = (label, ratio)
    if not ratios:
        return None
    return median(ratios), worst[0], worst[1], len(ratios)


def note_outcome_counters(fresh, base):
    """Robustness telemetry riding on bench rows: outcome/degraded/
    fault_retries (time records), memory_out and the tiled-layout locality
    counters tiles_skipped/domain_bytes_touched (space records). Tolerated
    when the baseline predates them (first recording), but noted; a fresh
    row that did not end clean/feasible is also noted loudly, since its
    timing reflects a cut-short run, not the search being measured."""
    new_fields = []
    unclean = []
    for label in sorted(fresh):
        row = fresh[label]
        base_row = base.get(label)
        # tiles_skipped / domain_bytes_touched are locality telemetry from
        # the tiled domain layout: note-only, never gated — their magnitude
        # tracks layout policy (and MONOMAP_TILES), not search behaviour.
        for field in ("outcome", "degraded", "fault_retries", "memory_out",
                      "tiles_skipped", "domain_bytes_touched"):
            if field in row and (base_row is None or field not in base_row):
                if field not in new_fields:
                    new_fields.append(field)
        if (row.get("outcome") not in (None, "feasible")
                or row.get("degraded") or row.get("fault_retries")
                or row.get("memory_out")):
            unclean.append(label)
    if new_fields:
        print(f"note: fresh rows carry outcome counter(s) {new_fields} "
              f"absent from the baseline; tolerated (first recording)")
    if unclean:
        print(f"note: {len(unclean)} fresh row(s) did not end clean/feasible "
              f"(degraded, faulted, memory-shed or budget-cut): "
              f"{unclean[:5]}{'...' if len(unclean) > 5 else ''}")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("fresh", help="fresh --json run")
    parser.add_argument("baseline", help="checked-in baseline (BENCH_*.json)")
    parser.add_argument("--max-ratio", type=float, default=2.0,
                        help="fail when median fresh/baseline exceeds this")
    parser.add_argument("--metric", default="seconds",
                        help="primary metric to compare (default: seconds)")
    parser.add_argument("--key", default="space",
                        help="record array name (space | time)")
    args = parser.parse_args()

    fresh = load_rows(args.fresh, args.key)
    base = load_rows(args.baseline, args.key)

    # Dropped rows fail loudly, but only inside grid sections the fresh run
    # actually covers: a CI gate that re-runs one grid against a multi-grid
    # baseline is comparing a deliberate subset, while a row that vanished
    # from a grid the fresh run DID produce means a case silently stopped
    # being benchmarked (suite renamed, engine dropped, found -> skipped).
    fresh_grids = {grid for (_, grid, _) in fresh}
    dropped = sorted(label for label in set(base) - set(fresh)
                     if label[1] in fresh_grids)
    if dropped:
        print(f"error: {len(dropped)} baseline row(s) missing from the "
              f"fresh run within its grid sections: {dropped[:5]}"
              f"{'...' if len(dropped) > 5 else ''}")
        return 1
    skipped_grids = sorted({grid for (_, grid, _) in set(base) - set(fresh)})
    if skipped_grids:
        print(f"note: baseline grid section(s) {skipped_grids} not covered "
              f"by this fresh run; comparing the covered sections only")
    # New rows (no baseline counterpart) are the first-recording path for a
    # freshly added grid section or suite: note them, compare the rest.
    added = sorted(set(fresh) - set(base))
    if added:
        print(f"note: {len(added)} fresh row(s) have no baseline yet: "
              f"{added[:5]}{'...' if len(added) > 5 else ''}")

    note_outcome_counters(fresh, base)

    # Deterministic effort counters are machine-independent; check whichever
    # one this record family carries alongside the primary metric.
    metrics = [args.metric]
    for counter in ("nodes_expanded", "sat_calls", "schedules_tried"):
        if counter != args.metric:
            metrics.append(counter)

    # Activity telemetry is gated on vanishing, not magnitude: the counts
    # depend on thread scheduling, but a cert-lifting channel that was
    # active in the baseline (sum > 0 over paired rows) going to exactly
    # zero means its wiring — or the subsystem it observes — silently
    # died; lifting follows deterministically from lower-II refutations,
    # unlike prefilter hits and steals, which legitimately vanish on a
    # machine with fewer cores (no overlap, no steals) and only warrant a
    # note. Rows predating a counter simply lack the key and are skipped.
    vanished = []
    quiet = []
    for counter in ("nogoods_lifted_cross_ii", "speculative_hits", "steals"):
        base_sum = fresh_sum = 0.0
        paired = False
        for label, fresh_row in fresh.items():
            base_row = base.get(label)
            if (base_row is None or counter not in fresh_row
                    or counter not in base_row):
                continue
            paired = True
            base_sum += float(base_row[counter])
            fresh_sum += float(fresh_row[counter])
        if paired and base_sum > 0 and fresh_sum == 0:
            if counter == "nogoods_lifted_cross_ii":
                vanished.append(counter)
            else:
                quiet.append(counter)

    failed = False
    checked = 0
    for metric in metrics:
        result = check_metric(fresh, base, metric, args.max_ratio)
        if result is None:
            continue
        checked += 1
        med, worst_label, worst_ratio, compared = result
        verdict = "FAIL" if med > args.max_ratio else "ok"
        if med > args.max_ratio:
            failed = True
        print(f"{verdict}: {metric}: median ratio {med:.3f} over {compared} "
              f"rows (limit {args.max_ratio:.2f}); worst {worst_ratio:.3f} "
              f"at {worst_label}")
    for counter in vanished:
        failed = True
        print(f"FAIL: {counter}: baseline recorded activity but the fresh "
              f"run sums to 0 — the counter (or its subsystem) went dead")
    for counter in quiet:
        print(f"note: {counter}: active in the baseline, 0 in this run "
              f"(expected on a smaller machine; not gated)")
    if checked == 0:
        # A gate that compared nothing (metric missing from this record
        # family, or no paired rows) must not pass silently — that is how
        # a schema drift turns a regression check into a no-op.
        print(f"error: no comparable metric among {metrics} for key "
              f"'{args.key}' — the gate checked nothing")
        return 1
    if failed:
        print("regression detected: fresh run is more than "
              f"{args.max_ratio:.2f}x the baseline at the median")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
